//! The self-stabilizing Avatar(CBT) node program: per-round fault detection,
//! epoch-aligned matching, and the handoff into the zipper merge
//! (see [`crate::merge`] for the zipper itself).

use crate::detector;
use crate::hosttree;
use crate::io::NetIo;
use crate::msg::{Beacon, CbtMsg, WalkKind};
use crate::schedule::Schedule;
use crate::scratch::{Contact, Merge, Scratch, MAX_CONTACTS};
use crate::state::{ClusterCore, NeighborView, Role};
use overlay::cbt::Cbt;
use rand::Rng;
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};
use ssim::NodeId;

/// Events surfaced by one protocol step (consumed by the scaffolding layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepEvents {
    /// The detector fired and this host reset to a singleton cluster.
    pub reset: bool,
    /// This host is a cluster root and its feedback wave reported the whole
    /// cluster clean (no external edges, no faults): the scaffold is built.
    pub cluster_clean: bool,
}

/// The protocol state of one host.
#[derive(Debug, Clone)]
pub struct CbtCore {
    /// Host identifier.
    pub id: NodeId,
    /// Guest capacity `N`.
    pub n: u32,
    /// The guest tree structure.
    pub cbt: Cbt,
    /// The epoch schedule for this `N`.
    pub sched: Schedule,
    /// Durable cluster membership state.
    pub core: ClusterCore,
    /// Latest neighbor beacons.
    pub view: NeighborView,
    /// Per-epoch scratch.
    pub scratch: Scratch,
    /// Rounds during which the unexplained-edge detector rule is suppressed
    /// (post-reset / post-commit).
    pub grace: u8,
    /// Number of detector resets performed (statistic).
    pub resets: u64,
    /// Number of merges committed (statistic).
    pub merges: u64,
    /// Suppress beacon traffic (set while dormant; the network is then
    /// *silent*).
    pub beacons_enabled: bool,
    /// Opt into the quiesce wave: when the root observes a fully clean
    /// feedback wave it broadcasts [`CbtMsg::Sleep`] down the host tree and
    /// the whole (now legal) network goes dormant — no beacons, no epoch
    /// machinery — until a message or a neighborhood change wakes it.
    /// Standalone Avatar(CBT) runs enable this
    /// ([`crate::CbtProgram::new`] does); the scaffolding layer keeps it
    /// off because it has its own CBT→CHORD phase switch at cleanliness.
    pub sleep_on_clean: bool,
    /// Dormant flag (see [`CbtCore::sleep_on_clean`]). While set, `step`
    /// is a no-op apart from the wake checks, so dormant hosts satisfy the
    /// engine's quiescence contract and activity-driven scheduling skips
    /// them entirely.
    pub asleep: bool,
    /// Rounds of residual traffic still tolerated while falling asleep
    /// (the Sleep wave needs a tree descent before the last beacons drain).
    pub sleep_grace: u8,
    /// Neighbor list cached at sleep time; any deviation is a wake-up.
    pub sleep_neighbors: Option<Vec<NodeId>>,
    /// Rounds after a wake-up during which beacon lookups are
    /// stale-tolerant: sleeping neighbors' states are frozen, so their last
    /// beacons are still accurate while everyone re-awakens and resumes
    /// beaconing.
    pub stale_grace: u8,
    /// Number of times this host fell asleep (statistic).
    pub sleeps: u64,
    /// Consecutive rounds the detector has reported a fault. A reset fires
    /// only once the fault has persisted for [`CbtCore::fault_patience`]
    /// rounds: beacons spend up to `Δ` rounds in flight, so for up to
    /// `Δ - 1` rounds after a merge commit the neighbors' in-flight
    /// beacons still carry the pre-merge cluster id and the cover rule
    /// *transiently* fails.
    pub fault_streak: u8,
    /// Rounds a detector fault must persist before the reset fires.
    /// `Δ` under a pure-latency channel ([`CbtCore::with_delta`] sets
    /// this; `Δ = 1` resets on the first faulty round — bit-for-bit the
    /// classic detector). A *lossy* channel needs more: after a commit
    /// only a new-cid beacon can re-cover a crossing edge, so losing the
    /// first post-commit beacon keeps the fault alive for a further `Δ`
    /// rounds per loss. [`crate::legal::runtime_with_net`] uses `3Δ`
    /// when `loss > 0` (two consecutive critical losses tolerated).
    pub fault_patience: u8,
    /// Copies sent of each merge-critical message (`MergeHello` and the
    /// three zip kinds). The zipper's commit is evaluated *locally* per
    /// host, so a single lost zip message yields asymmetric outcomes: one
    /// side commits, the other aborts, and the half-merged cluster resets.
    /// Retransmission drops the per-message effective loss from `p` to
    /// `p^k` (draws are independent); the handlers are idempotent, so
    /// extra copies are harmless. 1 (the default, and the ideal-channel
    /// setting) is bit-for-bit the classic single-send protocol. Walk
    /// messages must never be duplicated — each receipt forwards, so
    /// copies would multiply hop over hop.
    pub zip_redundancy: u8,
}

impl CbtCore {
    /// A host starting as a singleton cluster (the post-reset state).
    pub fn new(id: NodeId, n: u32, nonce: u64) -> Self {
        Self {
            id,
            n,
            cbt: Cbt::new(n),
            sched: Schedule::new(n),
            core: ClusterCore::singleton(id, n, nonce),
            view: NeighborView::default(),
            scratch: Scratch::new(0),
            grace: 2,
            resets: 0,
            merges: 0,
            beacons_enabled: true,
            sleep_on_clean: false,
            asleep: false,
            sleep_grace: 0,
            sleep_neighbors: None,
            stale_grace: 0,
            sleeps: 0,
            fault_streak: 0,
            fault_patience: 1,
            zip_redundancy: 1,
        }
    }

    /// Re-budget this host for a per-hop delivery bound of `delta` rounds
    /// (see [`Schedule::with_delta`]): the epoch schedule stretches
    /// uniformly, the beacon staleness horizon scales, and every grace
    /// window is re-derived. `with_delta(1)` is the identity. Call before
    /// the first step — the schedule realigns epoch arithmetic.
    #[must_use]
    pub fn with_delta(mut self, delta: u64) -> Self {
        let delta = delta.max(1);
        self.sched = self.sched.with_delta(delta);
        self.view.set_delta(delta);
        self.grace = Self::hops(delta, 2);
        self.fault_patience = Self::hops(delta, 1);
        self
    }

    /// Override the detector's fault patience (clamped to ≥ 1 round); see
    /// [`CbtCore::fault_patience`]. Call after [`CbtCore::with_delta`],
    /// which re-derives the pure-latency default.
    #[must_use]
    pub fn with_fault_patience(mut self, rounds: u64) -> Self {
        self.fault_patience = rounds.clamp(1, u8::MAX as u64) as u8;
        self
    }

    /// Send `copies` of each merge-critical message
    /// (see [`CbtCore::zip_redundancy`]); clamped to ≥ 1.
    #[must_use]
    pub fn with_zip_redundancy(mut self, copies: u8) -> Self {
        self.zip_redundancy = copies.max(1);
        self
    }

    /// Send a merge-critical message [`CbtCore::zip_redundancy`] times.
    pub(crate) fn send_critical(&self, io: &mut impl NetIo, to: NodeId, msg: CbtMsg) {
        for _ in 1..self.zip_redundancy {
            io.send(to, msg.clone());
        }
        io.send(to, msg);
    }

    /// A grace window of `hops` message hops expressed in rounds under
    /// delivery bound `delta`, clamped to the `u8` counters.
    fn hops(delta: u64, hops: u64) -> u8 {
        (delta.max(1) * hops).min(u8::MAX as u64) as u8
    }

    /// Grace window of `hops` hops under this host's own delivery bound.
    pub(crate) fn grace_hops(&self, hops: u64) -> u8 {
        Self::hops(self.sched.delta(), hops)
    }

    /// This host's beacon for the current epoch.
    pub fn beacon(&self) -> Beacon {
        Beacon {
            cid: self.core.cid,
            range: self.core.range,
            cluster_min: self.core.cluster_min,
            role: self.scratch.role,
            epoch: self.scratch.epoch,
        }
    }

    /// True iff this host is its cluster's root host.
    pub fn is_root(&self) -> bool {
        hosttree::is_root(&self.cbt, &self.core)
    }

    /// Reset to a singleton cluster with a fresh random nonce.
    pub fn reset(&mut self, io: &mut impl NetIo) {
        let nonce = io.rng().gen::<u64>();
        self.core = ClusterCore::singleton(self.id, self.n, nonce);
        self.scratch = Scratch::new(self.scratch.epoch);
        self.grace = self.grace_hops(3);
        self.fault_streak = 0;
        self.resets += 1;
        // A reset host is wide awake and beaconing.
        self.asleep = false;
        self.sleep_neighbors = None;
        self.beacons_enabled = true;
        self.stale_grace = 0;
    }

    /// True iff the host is dormant with the grace window drained and the
    /// neighbor baseline cached — i.e. its next `step` is a guaranteed
    /// no-op absent external input (the engine's quiescence contract).
    pub fn is_dormant(&self) -> bool {
        self.asleep && self.sleep_grace == 0 && self.sleep_neighbors.is_some()
    }

    /// Tree routing of an application request (the
    /// [`ssim::workload::Router`] decision): deliver when this host's
    /// responsible range covers the key; otherwise walk the guest CBT from
    /// this host's range root toward the key guest and forward to the
    /// same-cluster neighbor covering the first guest on that path outside
    /// this host's range. On a legal `Avatar(Cbt)` this is exactly the
    /// dilation-1 host-tree route — `O(log N)` hops.
    ///
    /// Neighbor ranges come from stale-tolerant beacon lookups (dormant
    /// hosts' cluster states are frozen, so their last beacons stay
    /// accurate — and routing must keep working while the legal network
    /// sleeps). Mid-merge or mid-reset views can fail to resolve; the
    /// request then retries against the healing overlay, bounded by its
    /// TTL.
    pub fn route_request(&self, key: u32, neighbors: &[NodeId]) -> ssim::workload::RouteStep {
        use ssim::workload::RouteStep;
        let key = key % self.n;
        if self.core.covers(key) {
            return RouteStep::Deliver;
        }
        // The guest-tree path root → key is fixed (BST descent). Routing
        // must be a function of the request's *progress along that path*,
        // not of the holder's range root: contiguous ranges can interleave
        // along the path (its values oscillate around the key as the
        // interval narrows), and two hosts each restarting from their own
        // range root would bounce the request between them forever. So:
        // find the deepest path guest this host covers and hand the
        // request to the host covering the *next* path guest — strictly
        // monotone, loop-free, ≤ height hops. Allocation-free: one walk
        // down the path, O(log N) `children` per step.
        let mut g = self.cbt.root();
        let mut next_after_covered: Option<u32> = None;
        let cur = loop {
            let next = if g == key {
                None
            } else {
                let (left, right) = self.cbt.children(g);
                if key < g {
                    left
                } else {
                    right
                }
            };
            if self.core.covers(g) {
                next_after_covered = next;
            }
            match next {
                Some(nx) => g = nx,
                None => break next_after_covered,
            }
        };
        let cur = match cur {
            // Covers part of the path: the next path guest is the hop.
            Some(nx) => nx,
            // Covers nothing on the path: route up the host tree — the
            // parent of the range root lies in an ancestor host's range
            // (strictly lower range-root level each hop), and the host
            // covering the guest root is on every path.
            None => {
                let rr = self.cbt.range_root(self.core.range.0, self.core.range.1);
                match self.cbt.parent(rr) {
                    Some(p) => p,
                    None => return RouteStep::Unroutable,
                }
            }
        };
        debug_assert!(!self.core.covers(cur));
        for &v in neighbors {
            if let Some(b) = self.view.latest(v) {
                if b.cid == self.core.cid && b.range.0 <= cur && cur < b.range.1 {
                    return RouteStep::Forward(v);
                }
            }
        }
        RouteStep::Unroutable
    }

    /// Enter the dormant state and propagate the Sleep wave.
    ///
    /// The wave floods over **all** incident edges, not just tree children:
    /// a node must fall asleep within one round of its first sleeping
    /// neighbor or its detector would see that neighbor's beacons go stale
    /// (TTL 3) before a tree-path descent reaches it — non-tree neighbors
    /// (the successor line, range-crossing edges) would reset and wake the
    /// whole network again. Flooding keeps the gap at one round, strictly
    /// inside the TTL.
    fn begin_sleep(&mut self, io: &mut impl NetIo, neighbors: &[NodeId]) {
        for &v in neighbors {
            io.send(v, CbtMsg::Sleep);
        }
        self.asleep = true;
        self.beacons_enabled = false;
        // Neighbor baseline is cached on the next step. Residual traffic
        // keeps arriving until the wave has flooded the whole network and
        // the last beacons have drained — tolerate it for a grace window.
        self.sleep_neighbors = None;
        self.sleep_grace =
            ((2 * (self.sched.height() + 1) + 8) * self.sched.delta()).min(u8::MAX as u64) as u8;
        self.sleeps += 1;
    }

    /// Leave the dormant state: resume beaconing and, for a few rounds,
    /// trust stale beacons — sleeping neighbors' cluster states are frozen,
    /// so their last beacons are accurate while the wake-up ripples out and
    /// fresh beacons return.
    fn wake(&mut self) {
        self.asleep = false;
        self.beacons_enabled = true;
        self.sleep_neighbors = None;
        self.sleep_grace = 0;
        self.stale_grace = self.grace_hops(6);
        self.grace = self.grace.max(self.grace_hops(2));
    }

    /// Execute one synchronous round.
    pub fn step(&mut self, io: &mut impl NetIo, inbox: &[(NodeId, CbtMsg)]) -> StepEvents {
        let mut ev = StepEvents::default();
        let round = io.round();

        // ---- Dormant fast path (standalone runs after the quiesce wave):
        // wake on any neighborhood change or, once the fall-asleep grace
        // has drained, on any message; otherwise the step is a strict
        // no-op — no scratch wipes, no beacons, no PRNG draws — so a
        // dormant network costs nothing under activity-driven scheduling.
        if self.asleep {
            let neighbors = io.neighbors();
            match &self.sleep_neighbors {
                None => self.sleep_neighbors = Some(neighbors.to_vec()),
                Some(cache) => {
                    if cache.as_slice() != neighbors {
                        self.wake();
                        return ev; // resume the full protocol next round
                    }
                }
            }
            if self.sleep_grace > 0 {
                self.sleep_grace -= 1;
                return ev; // residual traffic of the descending wave
            }
            if !inbox.is_empty() {
                self.wake();
            }
            return ev;
        }
        self.stale_grace = self.stale_grace.saturating_sub(1);
        let (epoch, offset) = self.sched.locate(round);

        // ---- Epoch boundary: wipe scratch. Note that the protocol never
        // deletes edges outside the post-commit prune: a "transient" walk
        // copy can coincide with an original edge whose deletion would
        // disconnect the network, so leftovers are left in place as external
        // edges (absorbed and pruned when their clusters eventually merge).
        if offset == 0 || self.scratch.epoch != epoch {
            self.scratch = Scratch::new(epoch);
        }

        // ---- Ingest beacons first so every other handler sees fresh state.
        for (from, m) in inbox {
            if let CbtMsg::Beacon(b) = m {
                self.view.record(*from, round, *b);
            }
        }
        let neighbors: Vec<NodeId> = io.neighbors().to_vec();
        self.view.retain_neighbors(&neighbors);

        // ---- Local fault detection (every round, grace-gated extras rule).
        // Shortly after a wake-up the freshness rule is relaxed: still-
        // sleeping neighbors' last beacons describe frozen state and remain
        // trustworthy until the wake ripple restores live beaconing.
        let fault = if self.stale_grace > 0 {
            detector::check_stale_tolerant(
                self.id,
                self.n,
                &self.cbt,
                &self.core,
                &self.view,
                round,
                &neighbors,
                self.grace > 0,
            )
        } else {
            detector::check(
                self.id,
                self.n,
                &self.cbt,
                &self.core,
                &self.view,
                round,
                &neighbors,
                self.grace > 0,
            )
        };
        self.grace = self.grace.saturating_sub(1);
        // Debounce: reset only when the fault has persisted (see
        // [`CbtCore::fault_patience`]). Patience 1 resets on the first one.
        self.fault_streak = if fault.is_some() {
            self.fault_streak.saturating_add(1)
        } else {
            0
        };
        if self.fault_streak >= self.fault_patience {
            self.reset(io);
            ev.reset = true;
            self.emit_beacon(io, &neighbors);
            return ev; // start over next round from the singleton state
        }

        // ---- Handle protocol messages.
        for (from, m) in inbox {
            self.handle(io, &neighbors, epoch, offset, *from, m, &mut ev);
        }

        // ---- Scheduled actions for this offset.
        self.scheduled(io, &neighbors, epoch, offset, &mut ev);

        // ---- Zipper merge rounds (see merge.rs).
        self.merge_tick(io, &neighbors, offset);

        self.emit_beacon(io, &neighbors);
        ev
    }

    fn emit_beacon(&self, io: &mut impl NetIo, neighbors: &[NodeId]) {
        if !self.beacons_enabled {
            return;
        }
        let b = self.beacon();
        for &v in neighbors {
            io.send(v, CbtMsg::Beacon(b));
        }
    }

    /// My host-tree parent, if consistent.
    fn parent(&self, round: u64, neighbors: &[NodeId]) -> Option<NodeId> {
        hosttree::parent(&self.cbt, &self.core, &self.view, round, neighbors)
    }

    /// My host-tree children.
    fn children(&self, round: u64, neighbors: &[NodeId]) -> Vec<NodeId> {
        hosttree::children(&self.cbt, &self.core, &self.view, round, neighbors)
    }

    /// External neighbors whose cluster advertises `Leader` for this epoch.
    fn leader_neighbors(&self, round: u64, epoch: u64, neighbors: &[NodeId]) -> Vec<NodeId> {
        self.view
            .fresh(round, neighbors)
            .filter(|(_, b)| {
                b.cid != self.core.cid && b.epoch == epoch && b.role == Some(Role::Leader)
            })
            .map(|(v, _)| v)
            .collect()
    }

    /// Member-level cleanliness: no external edges, no pending machinery.
    fn locally_clean(&self, round: u64, neighbors: &[NodeId]) -> bool {
        self.scratch.merge.is_none()
            && neighbors.iter().all(|&v| {
                self.view
                    .get(round, v)
                    .is_some_and(|b| b.cid == self.core.cid)
            })
    }

    #[allow(clippy::too_many_arguments)]
    fn handle(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        offset: u64,
        from: NodeId,
        m: &CbtMsg,
        _ev: &mut StepEvents,
    ) {
        let round = io.round();
        match m {
            CbtMsg::Beacon(_) => {} // ingested earlier
            CbtMsg::Sleep => {
                // Quiesce order from my (clean) parent. Only meaningful in
                // standalone runs, and never while a merge is in flight —
                // a clean cluster has none, so a Sleep that arrives mid-
                // merge is stale and dropped.
                if self.sleep_on_clean && !self.asleep && self.scratch.merge.is_none() {
                    self.begin_sleep(io, neighbors);
                }
            }
            CbtMsg::Poll { epoch: e, role } => {
                if *e == epoch && self.scratch.role.is_none() {
                    self.scratch.role = Some(*role);
                    for c in self.children(round, neighbors) {
                        io.send(c, CbtMsg::Poll { epoch, role: *role });
                    }
                }
            }
            CbtMsg::Report {
                epoch: e,
                candidate,
                clean,
            } => {
                if *e == epoch {
                    self.scratch.reports.insert(from, (*candidate, *clean));
                }
            }
            CbtMsg::Nominate { epoch: e } => {
                if *e == epoch {
                    self.forward_nomination(io, neighbors, epoch, offset);
                }
            }
            CbtMsg::MergeReq {
                epoch: e,
                fcid,
                fmin,
            } => {
                if *e == epoch
                    && self.scratch.role == Some(Role::Leader)
                    && offset < self.sched.t_match_deadline()
                {
                    self.start_contact_pull(io, neighbors, epoch, from, *fcid, *fmin);
                }
            }
            CbtMsg::WalkUp {
                epoch: e,
                kind,
                endpoint,
                remote_cid,
                remote_min,
            } => {
                if *e == epoch {
                    self.continue_walk(
                        io,
                        neighbors,
                        epoch,
                        *kind,
                        *endpoint,
                        *remote_cid,
                        *remote_min,
                    );
                }
            }
            CbtMsg::MatchMade {
                epoch: e,
                partner,
                partner_cid,
                walk_first,
                self_match,
            } => {
                if *e == epoch && self.scratch.nominated {
                    // Begin the follower-side walk carrying the partner
                    // endpoint toward my cluster root. For a self-match the
                    // partner endpoint is the leader root itself.
                    let _ = (walk_first, self_match);
                    self.start_match_walk(io, neighbors, epoch, *partner, *partner_cid);
                }
            }
            CbtMsg::AnchorDone { epoch: e } => {
                if *e == epoch {
                    // I am the second contact: the first follower's root
                    // (`from`) now holds the match edge. Carry it up my tree.
                    self.start_anchor_walk(io, neighbors, epoch, from);
                }
            }
            CbtMsg::MergeHello {
                epoch: e,
                cid,
                cluster_min,
            } => {
                if *e == epoch && offset < self.sched.t_zip() && self.is_root() {
                    self.on_merge_hello(io, epoch, from, *cid, *cluster_min);
                }
            }
            CbtMsg::ZipMeet(..) | CbtMsg::ZipChildInfo(..) | CbtMsg::ZipExpect(..) => {
                self.handle_zip(io, neighbors, epoch, from, m);
            }
        }
    }

    fn scheduled(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        offset: u64,
        ev: &mut StepEvents,
    ) {
        let round = io.round();

        // Epoch start: the root flips this epoch's role and starts the poll.
        if offset == self.sched.t_poll() && self.is_root() {
            let role = if io.rng().gen_bool(0.5) {
                Role::Leader
            } else {
                Role::Follower
            };
            self.scratch.role = Some(role);
            for c in self.children(round, neighbors) {
                io.send(c, CbtMsg::Poll { epoch, role });
            }
        }

        // Report window: snapshot children once, send upward when complete.
        if offset == self.sched.t_report_start() {
            self.scratch.report_children = Some(self.children(round, neighbors));
            self.scratch.self_candidate =
                !self.leader_neighbors(round, epoch, neighbors).is_empty()
                    && self.scratch.role == Some(Role::Follower);
        }
        if offset >= self.sched.t_report_start()
            && offset < self.sched.t_report_deadline()
            && !self.scratch.report_sent
        {
            if let Some(children) = self.scratch.report_children.clone() {
                let all_in = children
                    .iter()
                    .all(|c| self.scratch.reports.contains_key(c));
                if all_in && !self.is_root() {
                    let agg_cand = self.scratch.self_candidate
                        || children.iter().any(|c| self.scratch.reports[c].0);
                    let agg_clean = self.locally_clean(round, neighbors)
                        && children.iter().all(|c| self.scratch.reports[c].1);
                    // Remember which branch supplied the candidate for the
                    // nomination descent.
                    self.scratch.cand_child = if self.scratch.self_candidate {
                        None
                    } else {
                        children.iter().find(|c| self.scratch.reports[c].0).copied()
                    };
                    if let Some(p) = self.parent(round, neighbors) {
                        io.send(
                            p,
                            CbtMsg::Report {
                                epoch,
                                candidate: agg_cand,
                                clean: agg_clean,
                            },
                        );
                        self.scratch.report_sent = true;
                    }
                }
            }
        }

        // Root finalization: cleanliness signal and follower nomination.
        if offset == self.sched.t_nominate() && self.is_root() {
            let children = self.scratch.report_children.clone().unwrap_or_default();
            let all_in = children
                .iter()
                .all(|c| self.scratch.reports.contains_key(c));
            let clean = all_in
                && self.locally_clean(round, neighbors)
                && children.iter().all(|c| self.scratch.reports[c].1);
            if clean {
                self.scratch.observed_clean = true;
                ev.cluster_clean = true;
                // Standalone runs: the scaffold is built and the network is
                // legal — quiesce it. (The scaffolding layer reacts to
                // `cluster_clean` with its own CBT→CHORD switch instead.)
                if self.sleep_on_clean && !self.asleep {
                    self.begin_sleep(io, neighbors);
                }
            }
            if self.scratch.role == Some(Role::Follower) {
                self.scratch.cand_child = if self.scratch.self_candidate {
                    None
                } else {
                    children
                        .iter()
                        .find(|c| self.scratch.reports.get(c).is_some_and(|r| r.0))
                        .copied()
                };
                if self.scratch.self_candidate || self.scratch.cand_child.is_some() {
                    self.forward_nomination(io, neighbors, epoch, offset);
                }
            }
        }

        // Leader root: pair the collected contacts.
        if offset == self.sched.t_match()
            && self.is_root()
            && self.scratch.role == Some(Role::Leader)
            && !self.scratch.matched
        {
            self.dispatch_matches(io, epoch);
        }

        // Commit and prune are driven from merge.rs via merge_tick.
        let _ = offset;
    }

    /// Route the nomination token: either I am the contact, or pass it to
    /// the child whose subtree reported the candidate.
    fn forward_nomination(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        offset: u64,
    ) {
        if self.scratch.nominated || offset >= self.sched.t_match_deadline() {
            return;
        }
        if self.scratch.self_candidate {
            self.scratch.nominated = true;
            self.send_merge_req(io, neighbors, epoch);
        } else if let Some(c) = self.scratch.cand_child {
            if io.is_neighbor(c) {
                io.send(c, CbtMsg::Nominate { epoch });
            }
        }
    }

    /// The nominated contact asks its smallest external leader neighbor.
    fn send_merge_req(&mut self, io: &mut impl NetIo, neighbors: &[NodeId], epoch: u64) {
        if self.scratch.merge_req_sent {
            return;
        }
        let round = io.round();
        if let Some(&l) = self.leader_neighbors(round, epoch, neighbors).first() {
            io.send(
                l,
                CbtMsg::MergeReq {
                    epoch,
                    fcid: self.core.cid,
                    fmin: self.core.cluster_min,
                },
            );
            self.scratch.merge_req_sent = true;
        }
    }

    /// Leader member adjacent to a requesting follower: begin pulling the
    /// contact edge up to the leader root.
    fn start_contact_pull(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        follower: NodeId,
        fcid: u64,
        fmin: NodeId,
    ) {
        let round = io.round();
        if self.is_root() {
            self.accept_contact(follower, fcid, fmin);
            return;
        }
        if let Some(p) = self.parent(round, neighbors) {
            io.link(follower, p);
            io.send(
                p,
                CbtMsg::WalkUp {
                    epoch,
                    kind: WalkKind::ContactPull,
                    endpoint: follower,
                    remote_cid: fcid,
                    remote_min: fmin,
                },
            );
            // The (me, follower) edge is the original external edge: keep it.
        }
    }

    /// A walk step arrived: I now hold an edge to `endpoint`. Either absorb
    /// it (walk complete at a root) or hand it to my parent and drop my copy.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's predicate arity
    fn continue_walk(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        kind: WalkKind,
        endpoint: NodeId,
        remote_cid: u64,
        remote_min: NodeId,
    ) {
        let round = io.round();
        if !io.is_neighbor(endpoint) {
            return; // edge never materialized (peer reset); drop the walk
        }
        if self.is_root() {
            match kind {
                WalkKind::ContactPull => {
                    if self.scratch.role == Some(Role::Leader) {
                        self.accept_contact(endpoint, remote_cid, remote_min);
                    }
                }
                WalkKind::MatchW1 => {
                    // The match edge is anchored at my root; tell the far
                    // endpoint (second contact) to carry me up its tree.
                    io.send(endpoint, CbtMsg::AnchorDone { epoch });
                }
                WalkKind::MatchW2 => {
                    // endpoint is the partner cluster's root: handshake.
                    self.send_critical(
                        io,
                        endpoint,
                        CbtMsg::MergeHello {
                            epoch,
                            cid: self.core.cid,
                            cluster_min: self.core.cluster_min,
                        },
                    );
                    self.prime_merge(endpoint, remote_cid, remote_min);
                }
            }
            return;
        }
        if let Some(p) = self.parent(round, neighbors) {
            io.link(endpoint, p);
            io.send(
                p,
                CbtMsg::WalkUp {
                    epoch,
                    kind,
                    endpoint,
                    remote_cid,
                    remote_min,
                },
            );
        }
        // The copy this host holds lingers as an external edge; see the
        // epoch-boundary note (only the prune ever deletes edges).
    }

    fn accept_contact(&mut self, endpoint: NodeId, fcid: u64, fmin: NodeId) {
        let dup = self.scratch.contacts.iter().any(|c| c.fcid == fcid);
        if dup || self.scratch.contacts.len() >= MAX_CONTACTS || self.scratch.matched {
            return;
        }
        self.scratch.contacts.push(Contact {
            endpoint,
            fcid,
            fmin,
        });
    }

    /// Leader root at match time: pair contacts; odd leftover merges with us.
    fn dispatch_matches(&mut self, io: &mut impl NetIo, epoch: u64) {
        self.scratch.matched = true;
        let mut contacts = std::mem::take(&mut self.scratch.contacts);
        contacts.sort_by_key(|c| c.fcid);
        contacts.retain(|c| io.is_neighbor(c.endpoint));
        let mut iter = contacts.chunks_exact(2);
        for pair in iter.by_ref() {
            let (a, b) = (pair[0], pair[1]);
            io.link(a.endpoint, b.endpoint);
            io.send(
                a.endpoint,
                CbtMsg::MatchMade {
                    epoch,
                    partner: b.endpoint,
                    partner_cid: b.fcid,
                    walk_first: true,
                    self_match: false,
                },
            );
            io.send(
                b.endpoint,
                CbtMsg::MatchMade {
                    epoch,
                    partner: a.endpoint,
                    partner_cid: a.fcid,
                    walk_first: false,
                    self_match: false,
                },
            );
        }
        if let [last] = iter.remainder() {
            // Odd contact: the leader cluster itself merges with it. The
            // contact walks the (leader-root, contact) edge up its own tree.
            io.send(
                last.endpoint,
                CbtMsg::MatchMade {
                    epoch,
                    partner: self.id,
                    partner_cid: self.core.cid,
                    walk_first: true,
                    self_match: true,
                },
            );
            // Keep the edge; the far side's root will Hello us.
        }
    }

    /// First contact of a pair (or the self-match contact): walk the match
    /// edge up to my cluster root, carrying the partner endpoint.
    fn start_match_walk(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        partner: NodeId,
        partner_cid: u64,
    ) {
        let round = io.round();
        if !io.is_neighbor(partner) {
            return;
        }
        if self.is_root() {
            // Degenerate: the contact *is* the root (e.g. singleton cluster).
            io.send(partner, CbtMsg::AnchorDone { epoch });
            return;
        }
        if let Some(p) = self.parent(round, neighbors) {
            io.link(partner, p);
            io.send(
                p,
                CbtMsg::WalkUp {
                    epoch,
                    kind: WalkKind::MatchW1,
                    endpoint: partner,
                    remote_cid: partner_cid,
                    remote_min: partner, // authoritative value arrives in the Hello
                },
            );
        }
    }

    /// Second contact after `AnchorDone`: carry the anchored root (`anchor`)
    /// up my own tree to my root.
    fn start_anchor_walk(
        &mut self,
        io: &mut impl NetIo,
        neighbors: &[NodeId],
        epoch: u64,
        anchor: NodeId,
    ) {
        let round = io.round();
        if !io.is_neighbor(anchor) {
            return;
        }
        if self.is_root() {
            // Degenerate: I am my cluster's root; handshake directly.
            self.send_critical(
                io,
                anchor,
                CbtMsg::MergeHello {
                    epoch,
                    cid: self.core.cid,
                    cluster_min: self.core.cluster_min,
                },
            );
            return;
        }
        if let Some(p) = self.parent(round, neighbors) {
            io.link(anchor, p);
            io.send(
                p,
                CbtMsg::WalkUp {
                    epoch,
                    kind: WalkKind::MatchW2,
                    endpoint: anchor,
                    remote_cid: 0,
                    remote_min: anchor,
                },
            );
        }
    }

    /// Root-to-root handshake: prime the merge and answer the Hello once.
    fn on_merge_hello(
        &mut self,
        io: &mut impl NetIo,
        epoch: u64,
        from: NodeId,
        cid: u64,
        cluster_min: NodeId,
    ) {
        if !io.is_neighbor(from) || cid == self.core.cid {
            return;
        }
        let fresh = self.scratch.merge.is_none();
        self.prime_merge(from, cid, cluster_min);
        if fresh {
            self.send_critical(
                io,
                from,
                CbtMsg::MergeHello {
                    epoch,
                    cid: self.core.cid,
                    cluster_min: self.core.cluster_min,
                },
            );
        }
    }

    /// Set up this root's merge scratch for a level-0 meet with `partner`.
    fn prime_merge(&mut self, partner: NodeId, partner_cid: u64, partner_min: NodeId) {
        if self.scratch.merge.is_some() {
            return;
        }
        let new_cid = mix_cids(self.core.cid, partner_cid);
        let new_min = self.core.cluster_min.min(partner_min);
        let mut m = Merge {
            partner_cid,
            new_cid,
            new_min,
            ..Merge::default()
        };
        m.pending.push((0, partner));
        self.scratch.merge = Some(m);
    }
}

impl Persist for StepEvents {
    fn save(&self, w: &mut Writer) {
        w.bool(self.reset);
        w.bool(self.cluster_clean);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            reset: r.bool()?,
            cluster_clean: r.bool()?,
        })
    }
}

impl Persist for CbtCore {
    fn save(&self, w: &mut Writer) {
        w.u32(self.id);
        w.u32(self.n);
        // `cbt` is a pure function of `n` and `sched` of `(n, Δ)` — rebuilt
        // on load, not serialized (they dominate the state size and cannot
        // drift). Only the delivery bound Δ needs to travel.
        w.u64(self.sched.delta());
        self.core.save(w);
        self.view.save(w);
        self.scratch.save(w);
        w.u8(self.grace);
        w.u64(self.resets);
        w.u64(self.merges);
        w.bool(self.beacons_enabled);
        w.bool(self.sleep_on_clean);
        w.bool(self.asleep);
        w.u8(self.sleep_grace);
        self.sleep_neighbors.save(w);
        w.u8(self.stale_grace);
        w.u64(self.sleeps);
        w.u8(self.fault_streak);
        w.u8(self.fault_patience);
        w.u8(self.zip_redundancy);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let id = r.u32()?;
        let n = r.u32()?;
        if n == 0 {
            return Err(SnapshotError::Corrupt("CbtCore with n = 0".into()));
        }
        let delta = r.u64()?;
        if delta == 0 {
            return Err(SnapshotError::Corrupt("CbtCore with Δ = 0".into()));
        }
        Ok(Self {
            id,
            n,
            cbt: Cbt::new(n),
            sched: Schedule::new(n).with_delta(delta),
            core: ClusterCore::load(r)?,
            view: NeighborView::load(r)?,
            scratch: Scratch::load(r)?,
            grace: r.u8()?,
            resets: r.u64()?,
            merges: r.u64()?,
            beacons_enabled: r.bool()?,
            sleep_on_clean: r.bool()?,
            asleep: r.bool()?,
            sleep_grace: r.u8()?,
            sleep_neighbors: Option::load(r)?,
            stale_grace: r.u8()?,
            sleeps: r.u64()?,
            fault_streak: r.u8()?,
            fault_patience: match r.u8()? {
                0 => return Err(SnapshotError::Corrupt("zero fault patience".into())),
                p => p,
            },
            zip_redundancy: match r.u8()? {
                0 => return Err(SnapshotError::Corrupt("zero zip redundancy".into())),
                k => k,
            },
        })
    }
}

/// Symmetric combination of two cluster ids into the merged cluster's id.
pub fn mix_cids(a: u64, b: u64) -> u64 {
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
        x ^ (x >> 31)
    }
    splitmix64(a) ^ splitmix64(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tree routing on a legal cluster: following `route_request` hop by
    /// hop from any host reaches the host covering the key within the
    /// host-tree depth bound, and the covering host delivers.
    #[test]
    fn tree_routing_walks_to_the_covering_host() {
        use crate::msg::Beacon;
        use ssim::workload::RouteStep;
        let n = 64u32;
        let hosts = [3u32, 17, 30, 41, 55];
        let av = overlay::Avatar::new(n, hosts.iter().copied());
        let cores: Vec<CbtCore> = hosts
            .iter()
            .map(|&u| {
                let mut c = CbtCore::new(u, n, 7);
                let r = av.range_of(u);
                c.core = ClusterCore {
                    cid: 7,
                    range: (r.lo, r.hi),
                    cluster_min: 3,
                };
                for &v in &hosts {
                    if v != u {
                        let rv = av.range_of(v);
                        c.view.record(
                            v,
                            10,
                            Beacon {
                                cid: 7,
                                range: (rv.lo, rv.hi),
                                cluster_min: 3,
                                role: None,
                                epoch: 0,
                            },
                        );
                    }
                }
                c
            })
            .collect();
        for key in [0u32, 16, 31, 50, 63] {
            let responsible = av.host_of(key);
            for &start in &hosts {
                let mut cur = start;
                let mut hops = 0;
                loop {
                    let idx = hosts.iter().position(|&h| h == cur).unwrap();
                    let neighbors: Vec<ssim::NodeId> =
                        hosts.iter().copied().filter(|&v| v != cur).collect();
                    match cores[idx].route_request(key, &neighbors) {
                        RouteStep::Deliver => {
                            assert_eq!(cur, responsible, "key {key} from {start}");
                            break;
                        }
                        RouteStep::Forward(v) => {
                            cur = v;
                            hops += 1;
                            assert!(
                                hops <= cores[idx].cbt.height() + 2,
                                "key {key} from {start}: too many hops"
                            );
                        }
                        RouteStep::Unroutable => panic!("key {key} unroutable at {cur}"),
                    }
                }
            }
        }
    }

    #[test]
    fn mix_cids_is_symmetric_and_fresh() {
        assert_eq!(mix_cids(3, 9), mix_cids(9, 3));
        assert_ne!(mix_cids(3, 9), 3);
        assert_ne!(mix_cids(3, 9), 9);
        assert_ne!(mix_cids(3, 9), mix_cids(3, 10));
    }

    #[test]
    fn new_core_is_singleton() {
        let c = CbtCore::new(7, 64, 42);
        assert_eq!(c.core.range, (0, 64));
        assert_eq!(c.core.cluster_min, 7);
        assert!(c.is_root());
    }
}
