//! The global legal-configuration predicate for `Avatar(Cbt(N))` and
//! convenience constructors for experiment runtimes.
//!
//! Legality is a *global* predicate evaluated by the test/experiment harness
//! (the protocol itself only ever uses local information): one cluster, the
//! correct responsible ranges, and the host topology equal to the dilation-1
//! projection of the guest tree.

use crate::program::CbtProgram;
use crate::protocol::CbtCore;
use overlay::{Avatar, Cbt};
use ssim::monitor::{self, Goal};
use ssim::{init::Shape, Config, NodeId, Runtime, Topology};

/// The exact edge set of a legal `Avatar(Cbt(N))` over the given host set:
/// the dilation-1 projection of the guest tree plus the host successor line
/// (which wave 0 of the target-building phase relies on).
pub fn expected_edges(n: u32, ids: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let av = Avatar::new(n, ids.iter().copied());
    let cbt = Cbt::new(n);
    let mut edges = av.project_edges(cbt.edges());
    let mut sorted = ids.to_vec();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        edges.push((w[0], w[1]));
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// True iff the host states and topology form the legal `Avatar(Cbt(N))`.
pub fn is_legal_cbt<'a>(n: u32, topo: &Topology, cores: impl Iterator<Item = &'a CbtCore>) -> bool {
    let cores: Vec<&CbtCore> = cores.collect();
    if cores.is_empty() {
        return false;
    }
    let ids: Vec<NodeId> = cores.iter().map(|c| c.id).collect();
    let av = Avatar::new(n, ids.iter().copied());
    let cid = cores[0].core.cid;
    let min = *ids.iter().min().unwrap();
    for c in &cores {
        if c.core.cid != cid || c.core.cluster_min != min {
            return false;
        }
        let r = av.range_of(c.id);
        if c.core.range != (r.lo, r.hi) {
            return false;
        }
    }
    topo.edges() == expected_edges(n, &ids)
}

/// Runtime-level legality check for a standalone CBT run.
pub fn runtime_is_legal(rt: &Runtime<CbtProgram>) -> bool {
    let Some(&first) = rt.ids().first() else {
        return false; // all hosts departed: nothing legal to speak of
    };
    is_legal_cbt(
        rt.program(first).core.n,
        rt.topology(),
        rt.programs().map(|(_, p)| &p.core),
    )
}

/// The Avatar(CBT) legality goal as a composable [`ssim::Monitor`] — the
/// driver form of [`runtime_is_legal`], for [`Runtime::run_monitored`] and
/// scenario runs.
pub fn legality() -> Goal<impl FnMut(&Runtime<CbtProgram>) -> bool> {
    monitor::goal("avatar-cbt-legal", runtime_is_legal)
}

/// Build a CBT runtime over the given host ids and initial edges. Every host
/// starts as a singleton cluster with a seed-derived nonce (the arbitrary
/// initial *state* of the self-stabilization model is produced separately by
/// corruption helpers / faults).
pub fn runtime(
    n: u32,
    ids: &[NodeId],
    edges: Vec<(NodeId, NodeId)>,
    cfg: Config,
) -> Runtime<CbtProgram> {
    runtime_with_net(n, ids, edges, cfg, ssim::NetModel::ideal())
}

/// [`runtime`] under a network-conditions model: every host's epoch
/// schedule, beacon staleness horizon, and grace windows are re-budgeted
/// for the model's per-hop delivery bound `Δ = 1 + delay + jitter`
/// ([`ssim::NetModel::delivery_bound`]), and mid-run joiners inherit the
/// same budget from the spawner. With [`ssim::NetModel::ideal`] this is
/// exactly [`runtime`] (`Δ = 1` is the identity).
pub fn runtime_with_net(
    n: u32,
    ids: &[NodeId],
    edges: Vec<(NodeId, NodeId)>,
    cfg: Config,
    model: ssim::NetModel,
) -> Runtime<CbtProgram> {
    let seed = cfg.seed;
    let delta = model.delivery_bound();
    // A lossy channel can swallow the first post-commit beacon of an edge,
    // keeping the detector's cover fault alive for a further `Δ` rounds
    // per loss — so the detector waits out two consecutive losses before
    // treating the fault as real (see `CbtCore::fault_patience`). Jitter
    // needs the same slack without any loss at all: consecutive beacons
    // legitimately arrive up to `1 + jitter` rounds apart, and a detector
    // holding hosts to the tight `Δ` budget mistakes reordering for
    // silence.
    let patience = if model.loss > 0.0 || model.jitter > 0 {
        3 * delta
    } else {
        delta
    };
    // Merge-critical messages are retransmitted on lossy channels: the
    // zipper commit is local per host, so one lost zip message produces a
    // one-sided commit and a guaranteed reset (see
    // `CbtCore::zip_redundancy`). Two copies drop the effective loss to
    // `p²` — at the wan preset's 2% that is 4·10⁻⁴ per message.
    let redundancy = if model.loss > 0.0 { 2 } else { 1 };
    let mk = move |v: NodeId| {
        CbtProgram::new(v, n, join_nonce(seed, v))
            .with_delta(delta)
            .with_fault_patience(patience)
            .with_zip_redundancy(redundancy)
    };
    let nodes = ids.iter().map(|&v| (v, mk(v)));
    // Hosts joining mid-run (scenario churn) boot exactly like constructed
    // hosts: fresh singleton clusters with the seed-derived nonce (and the
    // same delivery-bound budget).
    let mut rt = Runtime::new(cfg, nodes, edges)
        .with_spawner(mk)
        .with_net_model(model);
    // Debug builds continuously audit the quiescence contract: if an
    // equivalence-claiming scheduler ever skips a host whose step is not a
    // no-op, the run panics (see `Runtime::enable_shadow_check`).
    if cfg!(debug_assertions) {
        rt.enable_shadow_check();
    }
    rt
}

fn join_nonce(seed: u64, v: NodeId) -> u64 {
    seed ^ (v as u64 + 7).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Restore a CBT runtime from snapshot bytes produced by
/// [`ssim::Runtime::save_snapshot`], re-registering the non-serializable
/// hooks a [`runtime`]-built instance carries: the join spawner (nonces
/// derived from the snapshot's seed, so mid-run joins behave exactly as in
/// the original run) and, in debug builds, the shadow quiescence check.
pub fn restore_runtime(
    bytes: &[u8],
    cfg: Config,
) -> Result<Runtime<CbtProgram>, ssim::SnapshotError> {
    let mut rt = Runtime::<CbtProgram>::restore_snapshot(bytes, cfg)?;
    let Some(&first) = rt.ids().first() else {
        return Err(ssim::SnapshotError::Corrupt(
            "avatar-cbt restore: no live hosts, cannot infer guest-space size N".into(),
        ));
    };
    let n = rt.program(first).core.n;
    let seed = rt.config().seed;
    rt.set_spawner(move |v| CbtProgram::new(v, n, join_nonce(seed, v)));
    if cfg!(debug_assertions) {
        rt.enable_shadow_check();
    }
    Ok(rt)
}

/// Build a CBT runtime from a named initial shape with `count` random hosts.
pub fn runtime_from_shape(n: u32, count: usize, shape: Shape, cfg: Config) -> Runtime<CbtProgram> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A);
    let ids = ssim::init::random_ids(count, n, &mut rng);
    let edges = shape.edges(&ids, &mut rng);
    runtime(n, &ids, edges, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_predicate_accepts_constructed_network() {
        let n = 32u32;
        let ids = [3u32, 9, 17, 26];
        let av = Avatar::new(n, ids);
        let edges = expected_edges(n, &ids);
        let mut rt = runtime(n, &ids, edges, Config::default());
        // Install the legal state directly.
        for &v in &ids {
            let r = av.range_of(v);
            rt.corrupt_node(v, |p| {
                p.core.core.cid = 42;
                p.core.core.range = (r.lo, r.hi);
                p.core.core.cluster_min = 3;
            });
        }
        assert!(runtime_is_legal(&rt));
    }

    #[test]
    fn legal_predicate_rejects_singletons() {
        let rt = runtime(32, &[3, 9], vec![(3, 9)], Config::default());
        assert!(!runtime_is_legal(&rt));
    }

    #[test]
    fn legal_predicate_rejects_wrong_topology() {
        let n = 32u32;
        let ids = [3u32, 9];
        let av = Avatar::new(n, ids);
        let edges = Vec::new(); // no edges at all
        let mut rt = runtime(n, &ids, edges, Config::default());
        for &v in &ids {
            let r = av.range_of(v);
            rt.corrupt_node(v, |p| {
                p.core.core.cid = 42;
                p.core.core.range = (r.lo, r.hi);
                p.core.core.cluster_min = 3;
            });
        }
        assert!(!runtime_is_legal(&rt));
    }
}
