//! Host-local cluster state.

use crate::msg::Beacon;
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};
use ssim::{CompactMap, NodeId};

/// The per-epoch cluster role of the matching phase (Section 3.2): leaders
/// match their adjacent followers for merging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Finds followers among neighboring clusters and pairs them.
    Leader,
    /// Seeks a leader-cluster neighbor that can assign a merge partner.
    Follower,
}

/// The durable cluster membership state of a host: everything that survives
/// across epochs. A *cluster* is a set of hosts that together form a legal
/// `Avatar(Cbt(N))` network over the full guest space `[0, N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterCore {
    /// Cluster identifier: a random nonce shared by all members. Random
    /// (rather than derived from host ids) so that adversarially planted
    /// duplicate identifiers are broken by the first reset — this is one
    /// source of the "in expectation" in the paper's theorems.
    pub cid: u64,
    /// This host's responsible range `[lo, hi)`.
    pub range: (u32, u32),
    /// The minimum host identifier in the cluster.
    pub cluster_min: NodeId,
}

impl ClusterCore {
    /// A freshly reset singleton cluster: this host alone hosts the entire
    /// guest space.
    pub fn singleton(id: NodeId, n: u32, nonce: u64) -> Self {
        Self {
            cid: nonce,
            range: (0, n),
            cluster_min: id,
        }
    }

    /// True iff the guest `g` is in this host's responsible range.
    pub fn covers(&self, g: u32) -> bool {
        self.range.0 <= g && g < self.range.1
    }

    /// Digest of the identity this state advertises (see
    /// [`identity_digest`]): what a truthful beacon would carry.
    pub fn digest(&self) -> u64 {
        identity_digest(self.cid, self.range, self.cluster_min)
    }

    /// **Adversarial**: corrupt the identity as a deterministic function of
    /// `salt` — always the cluster id (so the advertised digest provably
    /// changes), plus, depending on the salt, a well-formed-but-wrong
    /// responsible range or a shifted cluster minimum. Targeted field
    /// corruption, not scrambling: the result still parses, routes and
    /// beacons — it is just *false*.
    pub fn skew(&mut self, salt: u64) {
        self.cid ^= salt | 1;
        match salt % 3 {
            1 => {
                let (lo, hi) = self.range;
                let span = hi.saturating_sub(lo);
                if span > 1 {
                    self.range = (lo, lo + 1 + ((salt >> 8) as u32 % (span - 1)));
                }
            }
            2 => {
                self.cluster_min = self.cluster_min.wrapping_add(((salt >> 8) as u32) | 1);
            }
            _ => {}
        }
    }
}

/// FNV-1a digest of the cluster-identity triple a beacon advertises. The
/// view-divergence detector compares the digest a node's state would beacon
/// ([`ClusterCore::digest`]) against the digest a neighbor has recorded
/// ([`Beacon::digest`]); equality over `(cid, range, cluster_min)` is
/// exactly the "are we telling everyone the same thing" predicate — role
/// and epoch are legitimately in flux and excluded.
pub fn identity_digest(cid: u64, range: (u32, u32), cluster_min: NodeId) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for word in [cid, range.0 as u64, range.1 as u64, cluster_min as u64] {
        for b in word.to_le_bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The most recent beacon received from each neighbor, with receipt round.
///
/// Stored as a sorted inline [`CompactMap`]: a node tracks O(log² n)
/// neighbors, where binary-searched inline entries beat hashing on both
/// footprint (one allocation, no per-entry overhead) and snapshot encoding
/// (iteration order is already canonical).
#[derive(Debug, Clone)]
pub struct NeighborView {
    beacons: CompactMap<NodeId, (u64, Beacon)>,
    /// Staleness horizon in rounds. `BEACON_TTL` on the classic channel;
    /// scaled by the delivery bound `Δ` under a latency/jitter model, where
    /// arrival gaps of up to `1 + jitter` rounds are legitimate
    /// (see [`crate::Schedule::with_delta`]).
    ttl: u64,
}

impl Default for NeighborView {
    fn default() -> Self {
        Self {
            beacons: CompactMap::new(),
            ttl: BEACON_TTL,
        }
    }
}

/// Beacons older than this many rounds are considered stale (per delivery
/// bound unit; a view under delivery bound `Δ` uses `Δ × BEACON_TTL`).
pub const BEACON_TTL: u64 = 3;

impl NeighborView {
    /// Record a beacon received from `from` at `round`.
    pub fn record(&mut self, from: NodeId, round: u64, b: Beacon) {
        self.beacons.insert(from, (round, b));
    }

    /// Re-budget the staleness horizon for a per-hop delivery bound of
    /// `delta` rounds: beacons stay fresh for `Δ × BEACON_TTL` rounds.
    pub fn set_delta(&mut self, delta: u64) {
        self.ttl = delta.max(1) * BEACON_TTL;
    }

    /// The staleness horizon currently in force.
    pub fn ttl(&self) -> u64 {
        self.ttl
    }

    /// The fresh beacon of `v`, if any.
    pub fn get(&self, now: u64, v: NodeId) -> Option<&Beacon> {
        self.beacons
            .get(&v)
            .filter(|(r, _)| now.saturating_sub(*r) < self.ttl)
            .map(|(_, b)| b)
    }

    /// The most recent beacon of `v` regardless of age. Safe only when the
    /// caller knows the sender's state is frozen (e.g. during the CHORD
    /// phase, where cluster state cannot change without a phase reversion).
    pub fn latest(&self, v: NodeId) -> Option<&Beacon> {
        self.beacons.get(&v).map(|(_, b)| b)
    }

    /// Iterate fresh `(neighbor, beacon)` pairs restricted to the current
    /// neighbor set.
    pub fn fresh<'a>(
        &'a self,
        now: u64,
        neighbors: &'a [NodeId],
    ) -> impl Iterator<Item = (NodeId, &'a Beacon)> + 'a {
        neighbors
            .iter()
            .filter_map(move |&v| self.get(now, v).map(|b| (v, b)))
    }

    /// Drop beacons of nodes no longer adjacent (housekeeping).
    pub fn retain_neighbors(&mut self, neighbors: &[NodeId]) {
        self.beacons
            .retain(|v, _| neighbors.binary_search(v).is_ok());
    }

    /// `(neighbor, age)` for every recorded beacon, ascending by neighbor
    /// id, with `age` in rounds relative to `now` (floored at zero — receipt
    /// rounds are unsigned). The inspection surface of the
    /// beacon-staleness and view-divergence detectors.
    pub fn ages(&self, now: u64) -> Vec<(NodeId, u64)> {
        self.beacons
            .iter()
            .map(|(&v, &(r, _))| (v, now.saturating_sub(r)))
            .collect()
    }

    /// **Adversarial**: make every recorded beacon `rounds` older than it
    /// really is (receipt rounds floor at zero). Payloads are untouched —
    /// this is freshness-metadata corruption, the stale-beacon attack.
    pub fn age(&mut self, rounds: u64) {
        for (r, _) in self.beacons.values_mut() {
            *r = r.saturating_sub(rounds);
        }
    }

    /// Re-stamp every recorded beacon as received at `now` (fixture
    /// warming: installed-legal runtimes record their views at round 0,
    /// which leaves adversarial aging nowhere to go).
    pub fn restamp(&mut self, now: u64) {
        for (r, _) in self.beacons.values_mut() {
            *r = now;
        }
    }

    /// **Adversarial**: mutate the recorded beacon of `v` in place,
    /// preserving its receipt round (the equivocation attack fabricates
    /// payloads without touching freshness). Returns `false` when no beacon
    /// of `v` is recorded.
    pub fn tamper(&mut self, v: NodeId, f: impl FnOnce(&mut Beacon)) -> bool {
        match self.beacons.get_mut(&v) {
            Some((_, b)) => {
                f(b);
                true
            }
            None => false,
        }
    }
}

impl Persist for ClusterCore {
    fn save(&self, w: &mut Writer) {
        w.u64(self.cid);
        w.u32(self.range.0);
        w.u32(self.range.1);
        w.u32(self.cluster_min);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            cid: r.u64()?,
            range: (r.u32()?, r.u32()?),
            cluster_min: r.u32()?,
        })
    }
}

impl Persist for NeighborView {
    fn save(&self, w: &mut Writer) {
        // The compact map iterates in ascending neighbor id — exactly the
        // canonical encoding the old sorted-HashMap path produced, with no
        // collect-and-sort step.
        self.beacons.save(w);
        w.u64(self.ttl);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        // The map load rejects out-of-order or duplicate neighbor ids.
        let beacons = CompactMap::load(r)?;
        let ttl = r.u64()?;
        if ttl == 0 {
            return Err(SnapshotError::Corrupt("zero beacon ttl".into()));
        }
        Ok(Self { beacons, ttl })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(cid: u64) -> Beacon {
        Beacon {
            cid,
            range: (0, 8),
            cluster_min: 1,
            role: None,
            epoch: 0,
        }
    }

    #[test]
    fn singleton_covers_everything() {
        let c = ClusterCore::singleton(5, 32, 99);
        assert!(c.covers(0));
        assert!(c.covers(31));
        assert!(!c.covers(32));
        assert_eq!(c.cluster_min, 5);
    }

    #[test]
    fn view_staleness() {
        let mut v = NeighborView::default();
        v.record(3, 10, beacon(1));
        assert!(v.get(10, 3).is_some());
        assert!(v.get(12, 3).is_some());
        assert!(v.get(13, 3).is_none(), "stale after TTL");
        assert!(v.get(10, 4).is_none(), "unknown neighbor");
    }

    #[test]
    fn fresh_filters_by_neighbor_set() {
        let mut v = NeighborView::default();
        v.record(3, 10, beacon(1));
        v.record(5, 10, beacon(2));
        let fresh: Vec<NodeId> = v.fresh(11, &[3]).map(|(v, _)| v).collect();
        assert_eq!(fresh, vec![3]);
    }

    #[test]
    fn retain_drops_departed() {
        let mut v = NeighborView::default();
        v.record(3, 10, beacon(1));
        v.record(5, 10, beacon(2));
        v.retain_neighbors(&[5]);
        assert!(v.get(10, 3).is_none());
        assert!(v.get(10, 5).is_some());
    }
}
