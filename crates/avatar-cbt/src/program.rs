//! [`ssim::Program`] wrapper around the protocol core, for running the
//! Avatar(CBT) algorithm standalone (the scaffolding layer embeds
//! [`CbtCore`] directly instead).

use crate::io::CtxIo;
use crate::msg::CbtMsg;
use crate::protocol::{CbtCore, StepEvents};
use ssim::{Ctx, NodeId, Program};

/// A host node running the self-stabilizing Avatar(CBT) algorithm.
#[derive(Debug, Clone)]
pub struct CbtProgram {
    /// The protocol state.
    pub core: CbtCore,
    /// Events from the most recent round.
    pub last_events: StepEvents,
}

impl CbtProgram {
    /// A host starting as a singleton cluster.
    pub fn new(id: NodeId, n: u32, nonce: u64) -> Self {
        Self {
            core: CbtCore::new(id, n, nonce),
            last_events: StepEvents::default(),
        }
    }
}

impl Program for CbtProgram {
    type Msg = CbtMsg;

    fn step(&mut self, ctx: &mut Ctx<'_, CbtMsg>) {
        let inbox: Vec<(NodeId, CbtMsg)> = ctx.inbox().to_vec();
        let mut io = CtxIo::new(ctx);
        self.last_events = self.core.step(&mut io, &inbox);
    }

    fn is_quiescent(&self) -> bool {
        self.core.scratch.observed_clean
    }
}
