//! [`ssim::Program`] wrapper around the protocol core, for running the
//! Avatar(CBT) algorithm standalone (the scaffolding layer embeds
//! [`CbtCore`] directly instead).

use crate::io::CtxIo;
use crate::msg::CbtMsg;
use crate::protocol::{CbtCore, StepEvents};
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};
use ssim::workload::{RouteStep, Router};
use ssim::{Ctx, NodeId, Program};

/// A host node running the self-stabilizing Avatar(CBT) algorithm.
#[derive(Debug, Clone)]
pub struct CbtProgram {
    /// The protocol state.
    pub core: CbtCore,
    /// Events from the most recent round.
    pub last_events: StepEvents,
}

impl CbtProgram {
    /// A host starting as a singleton cluster. Standalone hosts opt into
    /// the quiesce wave ([`CbtCore::sleep_on_clean`]): once the root
    /// observes the network clean, the whole (legal) network goes dormant
    /// and costs nothing under activity-driven scheduling.
    pub fn new(id: NodeId, n: u32, nonce: u64) -> Self {
        let mut core = CbtCore::new(id, n, nonce);
        core.sleep_on_clean = true;
        Self {
            core,
            last_events: StepEvents::default(),
        }
    }

    /// Re-budget the host for a per-hop delivery bound of `delta` rounds
    /// (see [`CbtCore::with_delta`]). `with_delta(1)` is the identity.
    #[must_use]
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.core = self.core.with_delta(delta);
        self
    }

    /// Override the detector's fault patience
    /// (see [`CbtCore::with_fault_patience`]).
    #[must_use]
    pub fn with_fault_patience(mut self, rounds: u64) -> Self {
        self.core = self.core.with_fault_patience(rounds);
        self
    }

    /// Retransmit merge-critical messages
    /// (see [`CbtCore::with_zip_redundancy`]).
    #[must_use]
    pub fn with_zip_redundancy(mut self, copies: u8) -> Self {
        self.core = self.core.with_zip_redundancy(copies);
        self
    }
}

impl Program for CbtProgram {
    type Msg = CbtMsg;

    fn step(&mut self, ctx: &mut Ctx<'_, CbtMsg>) {
        let inbox: Vec<(NodeId, CbtMsg)> = ctx.inbox().to_vec();
        let mut io = CtxIo::new(ctx);
        self.last_events = self.core.step(&mut io, &inbox);
    }

    /// The engine's quiescence contract: only a *dormant* host (asleep via
    /// the quiesce wave, grace drained, neighbor baseline cached) has a
    /// guaranteed-no-op next step. An awake host beacons every round even
    /// when its cluster looks clean, so it must keep being scheduled.
    fn is_quiescent(&self) -> bool {
        self.core.is_dormant()
    }
}

impl Persist for CbtProgram {
    fn save(&self, w: &mut Writer) {
        self.core.save(w);
        self.last_events.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            core: CbtCore::load(r)?,
            last_events: StepEvents::load(r)?,
        })
    }
}

impl Router for CbtProgram {
    /// Host-tree routing over live links — see [`CbtCore::route_request`].
    fn route(&self, key: u32, neighbors: &[NodeId]) -> RouteStep {
        self.core.route_request(key, neighbors)
    }
}

impl ssim::Sabotage for CbtProgram {
    fn age_observations(&mut self, rounds: u64) {
        self.core.view.age(rounds);
    }

    /// Skews the cluster identity ([`crate::state::ClusterCore::skew`]) and
    /// wakes the host, so the lie is actively beaconed to the neighbors
    /// rather than sitting inert in a dormant node.
    fn skew_identity(&mut self, salt: u64) {
        self.core.core.skew(salt);
        self.core.asleep = false;
        self.core.beacons_enabled = true;
        self.core.sleep_neighbors = None;
    }

    fn plant_observation(&mut self, about: ssim::NodeId, salt: u64) -> bool {
        self.core.view.tamper(about, |b| {
            let mut fake = crate::state::ClusterCore {
                cid: b.cid,
                range: b.range,
                cluster_min: b.cluster_min,
            };
            fake.skew(salt);
            b.cid = fake.cid;
            b.range = fake.range;
            b.cluster_min = fake.cluster_min;
        })
    }
}

impl ssim::Introspect for CbtProgram {
    fn observation_ages(&self, now: u64) -> Vec<(ssim::NodeId, u64)> {
        self.core.view.ages(now)
    }

    fn identity_digest(&self) -> u64 {
        self.core.core.digest()
    }

    fn recorded_digest(&self, about: ssim::NodeId) -> Option<u64> {
        self.core.view.latest(about).map(|b| b.digest())
    }
}
