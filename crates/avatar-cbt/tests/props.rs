//! Property tests on the scaffold protocol's pure components.

use avatar_cbt::hosttree::{ranges_adjacent, ranges_consecutive, required_edge};
use avatar_cbt::merge::won_by;
use avatar_cbt::Schedule;
use overlay::{Avatar, Cbt};
use proptest::prelude::*;

proptest! {
    /// Schedule offsets stay strictly ordered and fit in one epoch for any N.
    #[test]
    fn schedule_offsets_ordered(n_exp in 2u32..22) {
        let n = 1u32 << n_exp;
        let s = Schedule::new(n);
        let seq = [
            s.t_poll(),
            s.t_roles_known(),
            s.t_report_start(),
            s.t_report_deadline(),
            s.t_nominate(),
            s.t_match_deadline(),
            s.t_match(),
            s.t_zip(),
            s.t_commit(),
            s.t_prune(),
        ];
        prop_assert!(seq.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(*seq.last().unwrap() < s.epoch_len());
        // Zip levels for every tree level land strictly before the commit.
        for level in 0..=s.height() as u32 {
            prop_assert!(s.t_zip_level(level) < s.t_commit());
            prop_assert_eq!(s.zip_level_at(s.t_zip_level(level)), Some(level));
        }
        // Epoch is Θ(log N).
        prop_assert!(s.epoch_len() <= 16 * (n_exp as u64 + 4));
    }

    /// The pairwise ownership rule is a partition: exactly one side wins
    /// each guest of the intersection.
    #[test]
    fn winner_rule_is_exclusive(
        a in 0u32..256,
        b in 0u32..256,
        lo in 0u32..256,
        len in 0u32..64,
    ) {
        prop_assume!(a != b);
        let inter = (lo, lo + len);
        let wa = won_by(a, b, inter);
        let wb = won_by(b, a, inter);
        for g in lo..lo + len {
            let in_a = wa.iter().any(|&(x, y)| x <= g && g < y);
            let in_b = wb.iter().any(|&(x, y)| x <= g && g < y);
            prop_assert!(in_a ^ in_b, "guest {} a={} b={}", g, a, b);
        }
    }

    /// `required_edge` is symmetric and implied by either sub-relation.
    #[test]
    fn required_edge_symmetric(
        (n, a0, a1, b0, b1) in (8u32..256).prop_flat_map(|n| {
            (Just(n), 0..n, 1..=n, 0..n, 1..=n)
        }),
    ) {
        prop_assume!(a0 < a1 && b0 < b1);
        let cbt = Cbt::new(n);
        let ra = (a0, a1);
        let rb = (b0, b1);
        prop_assert_eq!(required_edge(&cbt, ra, rb), required_edge(&cbt, rb, ra));
        prop_assert_eq!(ranges_adjacent(&cbt, ra, rb), ranges_adjacent(&cbt, rb, ra));
        if ranges_consecutive(ra, rb) || ranges_adjacent(&cbt, ra, rb) {
            prop_assert!(required_edge(&cbt, ra, rb));
        }
    }

    /// For a legal host set, every host's required neighbors per
    /// `required_edge` equal the projected scaffold edges plus the successor
    /// line — i.e. the protocol's local notion matches the global legal
    /// topology used by the tests.
    #[test]
    fn required_edges_match_legal_topology(
        n_exp in 3u32..9,
        picks in proptest::collection::btree_set(0u32..256, 2..16),
    ) {
        let n = 1u32 << n_exp;
        let hosts: Vec<u32> = picks.into_iter().filter(|&v| v < n).collect();
        prop_assume!(hosts.len() >= 2);
        let av = Avatar::new(n, hosts.iter().copied());
        let cbt = Cbt::new(n);
        let legal: std::collections::HashSet<(u32, u32)> =
            avatar_cbt::legal::expected_edges(n, &hosts).into_iter().collect();
        for (i, &u) in hosts.iter().enumerate() {
            for &v in &hosts[i + 1..] {
                let ru = av.range_of(u);
                let rv = av.range_of(v);
                let req = required_edge(&cbt, (ru.lo, ru.hi), (rv.lo, rv.hi));
                prop_assert_eq!(
                    req,
                    legal.contains(&(u, v)),
                    "hosts {} {} ranges {:?} {:?}",
                    u,
                    v,
                    ru,
                    rv
                );
            }
        }
    }
}
