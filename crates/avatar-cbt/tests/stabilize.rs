//! End-to-end stabilization tests for the Avatar(CBT) algorithm, driven
//! through the generic `Runtime::run_monitored` / `avatar_cbt::legality()`
//! observer API.

use avatar_cbt::legal::{legality, runtime, runtime_is_legal};
use ssim::monitor::{MonitorExt, PeakDegree, RunVerdict};
use ssim::Config;

/// Generous round budget: c · E · log n epochs' worth.
fn budget(n: u32, hosts: usize) -> u64 {
    let e = avatar_cbt::Schedule::new(n).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (6 * logn + 12)
}

#[test]
fn two_singletons_merge() {
    let n = 16u32;
    let ids = [3u32, 9];
    let mut rt = runtime(n, &ids, vec![(3, 9)], Config::seeded(1));
    let out = rt.run_monitored(&mut legality(), budget(n, 2));
    assert_eq!(
        out.verdict,
        RunVerdict::Satisfied,
        "two hosts failed to merge"
    );
    assert!(runtime_is_legal(&rt));
}

#[test]
fn three_hosts_line() {
    let n = 16u32;
    let ids = [2u32, 7, 12];
    let mut rt = runtime(n, &ids, vec![(2, 7), (7, 12)], Config::seeded(2));
    let out = rt.run_monitored(&mut legality(), budget(n, 3));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "three hosts failed");
}

#[test]
fn eight_hosts_ring() {
    let n = 64u32;
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(n, &ids, edges, Config::seeded(3));
    let out = rt.run_monitored(&mut legality(), budget(n, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "eight hosts failed");
    assert!(runtime_is_legal(&rt));
}

#[test]
fn thirty_two_hosts_from_all_shapes() {
    use avatar_cbt::legal::runtime_from_shape;
    use ssim::init::Shape;
    let n = 256u32;
    for (i, shape) in Shape::ALL.into_iter().enumerate() {
        let mut rt = runtime_from_shape(n, 32, shape, Config::seeded(100 + i as u64));
        let out = rt.run_monitored(&mut legality(), budget(n, 32));
        assert_eq!(
            out.verdict,
            RunVerdict::Satisfied,
            "shape {} failed to stabilize",
            shape.label()
        );
    }
}

#[test]
fn restabilizes_after_edge_faults() {
    use ssim::fault::{inject, Fault};
    let n = 64u32;
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(n, &ids, edges, Config::seeded(7));
    let out = rt.run_monitored(&mut legality(), budget(n, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "initial stabilization");

    // Transient fault: rewire a few edges, keeping connectivity.
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    inject(&mut rt, &Fault::Rewire { count: 3 }, &mut rng);
    assert!(!runtime_is_legal(&rt), "fault should break legality");

    let out = rt.run_monitored(&mut legality(), budget(n, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "failed to re-stabilize");
}

#[test]
fn restabilizes_after_state_corruption() {
    let n = 64u32;
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(n, &ids, edges, Config::seeded(8));
    rt.run_monitored(&mut legality(), budget(n, 8));
    assert!(runtime_is_legal(&rt), "initial stabilization");

    // Corrupt three hosts' cluster state arbitrarily.
    for (v, cid, range) in [
        (9u32, 77u64, (0u32, 64u32)),
        (25, 78, (3, 9)),
        (41, 77, (40, 64)),
    ] {
        rt.corrupt_node(v, |p| {
            p.core.core.cid = cid;
            p.core.core.range = range;
            p.core.core.cluster_min = 0;
        });
    }
    let out = rt.run_monitored(&mut legality(), budget(n, 8));
    assert_eq!(
        out.verdict,
        RunVerdict::Satisfied,
        "failed after corruption"
    );
    assert!(runtime_is_legal(&rt));
}

#[test]
fn single_host_is_immediately_legal() {
    let mut rt = runtime(16, &[5], vec![], Config::seeded(9));
    let out = rt.run_monitored(&mut legality(), 10);
    assert_eq!(out.rounds_if_satisfied(), Some(0), "a singleton is legal");
}

#[test]
fn stays_legal_once_stabilized() {
    let n = 64u32;
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(n, &ids, edges, Config::seeded(10));
    let out = rt.run_monitored(&mut legality(), budget(n, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "stabilization");
    for _ in 0..2 * avatar_cbt::Schedule::new(n).epoch_len() {
        rt.step();
        assert!(runtime_is_legal(&rt), "legality must be closed under steps");
    }
}

#[test]
fn composed_monitor_enforces_degree_budget_while_stabilizing() {
    // The degree-expansion guarantee as an inline invariant: legality AND a
    // generous peak-degree ceiling, one driver call.
    let n = 64u32;
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(n, &ids, edges, Config::seeded(11));
    let mut monitor = legality().and(PeakDegree::at_most(ids.len() - 1));
    let out = rt.run_monitored(&mut monitor, budget(n, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "{:?}", out.reason);
}

#[test]
fn rounds_if_satisfied_gives_the_classic_option_shape() {
    let mut rt = runtime(16, &[3, 9], vec![(3, 9)], Config::seeded(1));
    let rounds = rt
        .run_monitored(&mut legality(), budget(16, 2))
        .rounds_if_satisfied();
    assert!(rounds.is_some());
}

/// CBT stabilization through the monitored batched driver is byte-identical
/// at every thread count: `runtime` arms the debug shadow-step check, so
/// the chunked parallel apply and hot-window batching also run under the
/// quiescence auditor the whole way.
#[test]
fn stabilization_is_thread_and_batch_invariant() {
    let n = 64u32;
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let run = |threads: usize, batch: u32| {
        let cfg = Config::seeded(21)
            .threads(threads)
            .always_parallel()
            .batch_rounds(batch);
        let mut rt = runtime(n, &ids, ssim::init::ring(&ids), cfg);
        let out = rt.run_monitored(&mut legality(), budget(n, ids.len()));
        assert_eq!(
            out.verdict,
            RunVerdict::Satisfied,
            "{threads} threads, batch {batch}"
        );
        (
            out.rounds,
            serde_json::to_string(rt.metrics()).expect("metrics serialize"),
        )
    };
    let sequential = run(1, 1);
    for threads in [2usize, 4, 8] {
        for batch in [1u32, 16] {
            assert_eq!(
                sequential,
                run(threads, batch),
                "{threads} threads, batch {batch} diverged"
            );
        }
    }
}
