//! Stabilization under WAN network conditions ([`ssim::net`]): latency and
//! jitter exercise the delivery-bound re-budgeting ([`Schedule::with_delta`]),
//! loss and duplication exercise the epoch-retry argument, and partitions +
//! churn force re-stabilization after the network is spliced back together.

use avatar_cbt::{legality, runtime, runtime_is_legal, runtime_with_net, Schedule};
use ssim::monitor::RunVerdict;
use ssim::{Config, NetModel};

/// Convergence budget in rounds for `hosts` hosts on guest capacity `n`
/// under delivery bound `delta` — the epoch length scales with `Δ`, so the
/// budget must too.
fn budget(n: u32, hosts: usize, delta: u64) -> u64 {
    let e = Schedule::new(n).with_delta(delta).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (6 * logn + 12)
}

fn ring_ids() -> Vec<u32> {
    vec![1, 9, 17, 25, 33, 41, 49, 57]
}

#[test]
fn eight_hosts_stabilize_under_lossy_wan() {
    let model = NetModel::wan();
    let delta = model.delivery_bound();
    let ids = ring_ids();
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime_with_net(64, &ids, edges, Config::seeded(31), model);
    let out = rt.run_monitored(&mut legality(), 6 * budget(64, 8, delta));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "lossy WAN stalls");
    let net = rt.net_stats();
    assert!(net.conserved(), "{net:?}");
    assert!(net.dropped_loss > 0, "the WAN preset must actually drop");
}

#[test]
fn deterministic_latency_alone_stabilizes() {
    // Pure delay + jitter, zero loss: without the `Δ`-scaled schedule this
    // configuration stalls *forever* (every fixed window is missed every
    // epoch — deterministically, unlike loss which merely costs retries).
    let model = NetModel {
        delay: 2,
        jitter: 1,
        ..NetModel::ideal()
    };
    let delta = model.delivery_bound();
    let ids = ring_ids();
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime_with_net(64, &ids, edges, Config::seeded(33), model);
    let out = rt.run_monitored(&mut legality(), 4 * budget(64, 8, delta));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "latency stalls");
    assert!(rt.net_stats().conserved());
}

#[test]
fn partition_with_churn_heals_back_to_legal() {
    let ids = ring_ids();
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(64, &ids, edges, Config::seeded(32));
    let out = rt.run_monitored(&mut legality(), budget(64, 8, 1));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "ideal convergence");

    // Cut the converged overlay in half and churn both sides while the
    // cut is up: a partition alone never breaks legality (edges are node
    // state and stay untouched), but departures during the cut force the
    // survivors to rebuild across a boundary they cannot talk over.
    // (17 and 33 are safe departures: the legal topology keeps direct
    // 9–25 and 25–41 edges, so the survivor graph stays connected —
    // self-stabilization cannot reconnect a disconnected graph.)
    rt.partition([1u32, 9, 17, 25]);
    rt.leave(17);
    rt.leave(33);
    for _ in 0..20 {
        rt.step();
    }
    assert!(rt.partitioned());
    assert!(
        !runtime_is_legal(&rt),
        "churn during the cut must leave the overlay illegal"
    );
    rt.heal();
    let out = rt.run_monitored(&mut legality(), 4 * budget(64, 8, 1));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "no re-stabilization");
    let net = rt.net_stats();
    assert!(net.conserved(), "{net:?}");
    assert!(
        net.dropped_partition > 0,
        "the cut must have dropped traffic"
    );
}
