//! Messages of the combined scaffolding protocol: the embedded Avatar(CBT)
//! traffic plus the phase machinery and the PIF finger waves of Algorithm 1.

use avatar_cbt::CbtMsg;
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};
use ssim::NodeId;

/// The phase of Section 4.4: which algorithm a host is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize)]
pub enum Phase {
    /// Building the scaffold: executing the Avatar(CBT) algorithm.
    Cbt,
    /// Building the target: executing the PIF waves of Algorithm 1.
    Chord,
    /// Legal target reached: take no actions while the neighborhood is
    /// consistent (the network is *silent*).
    Done,
}

/// Per-round phase information shared with neighbors during the CHORD phase
/// (part of the state exchange Definition 3's `scaffolded` predicate reads).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseInfo {
    /// The sender's phase.
    pub phase: Phase,
    /// Highest wave whose feedback the sender completed (−1 = none).
    pub last_wave: i64,
}

/// Messages of the scaffolding protocol.
#[derive(Debug, Clone)]
pub enum ScafMsg {
    /// Embedded Avatar(CBT) protocol traffic.
    Cbt(CbtMsg),
    /// Phase/wave state exchange (CHORD phase only; DONE is silent).
    Phase(PhaseInfo),
    /// Phase switch CBT→CHORD, propagated down the host tree by the root
    /// after a clean feedback wave.
    StartChord,
    /// `PIF(MakeFinger(k))` propagate action (Algorithm 1 lines 2, 10).
    Prop {
        /// The wave (finger) index.
        k: u32,
    },
    /// Feedback action of wave `k` (Algorithm 1 lines 3–7, 11–14), carrying
    /// the walked edges to guests `0` and `N − 1` during wave 0.
    Fb {
        /// The wave index.
        k: u32,
        /// Carried endpoint owning guest 0 (wave 0 only).
        ring0: Option<NodeId>,
        /// Carried endpoint owning guest `N − 1` (wave 0 only).
        ring_n: Option<NodeId>,
    },
    /// Final wave: set phase to DONE if the local neighborhood is consistent
    /// with the legal Avatar(Chord) network.
    StartDone,
    /// Feedback of the DONE wave.
    FbDone,
}

impl Persist for Phase {
    fn save(&self, w: &mut Writer) {
        w.u8(match self {
            Phase::Cbt => 0,
            Phase::Chord => 1,
            Phase::Done => 2,
        });
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(Phase::Cbt),
            1 => Ok(Phase::Chord),
            2 => Ok(Phase::Done),
            t => Err(SnapshotError::Corrupt(format!("Phase tag {t}"))),
        }
    }
}

impl Persist for PhaseInfo {
    fn save(&self, w: &mut Writer) {
        self.phase.save(w);
        w.i64(self.last_wave);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            phase: Phase::load(r)?,
            last_wave: r.i64()?,
        })
    }
}

impl Persist for ScafMsg {
    fn save(&self, w: &mut Writer) {
        match self {
            ScafMsg::Cbt(m) => {
                w.u8(0);
                m.save(w);
            }
            ScafMsg::Phase(pi) => {
                w.u8(1);
                pi.save(w);
            }
            ScafMsg::StartChord => w.u8(2),
            ScafMsg::Prop { k } => {
                w.u8(3);
                w.u32(*k);
            }
            ScafMsg::Fb { k, ring0, ring_n } => {
                w.u8(4);
                w.u32(*k);
                ring0.save(w);
                ring_n.save(w);
            }
            ScafMsg::StartDone => w.u8(5),
            ScafMsg::FbDone => w.u8(6),
        }
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        match r.u8()? {
            0 => Ok(ScafMsg::Cbt(CbtMsg::load(r)?)),
            1 => Ok(ScafMsg::Phase(PhaseInfo::load(r)?)),
            2 => Ok(ScafMsg::StartChord),
            3 => Ok(ScafMsg::Prop { k: r.u32()? }),
            4 => Ok(ScafMsg::Fb {
                k: r.u32()?,
                ring0: Option::load(r)?,
                ring_n: Option::load(r)?,
            }),
            5 => Ok(ScafMsg::StartDone),
            6 => Ok(ScafMsg::FbDone),
            t => Err(SnapshotError::Corrupt(format!("ScafMsg tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `ScafMsg` wraps `CbtMsg` with zero width overhead: the wrapper's
    /// discriminant fits the inner enum's niche. Pinned so a new variant or
    /// field cannot silently widen every in-flight message of the combined
    /// protocol.
    #[test]
    #[cfg(target_pointer_width = "64")]
    fn message_layout_stays_compact() {
        use std::mem::size_of;
        assert_eq!(
            size_of::<ScafMsg>(),
            size_of::<CbtMsg>(),
            "niche-packed wrapper"
        );
        assert_eq!(size_of::<ScafMsg>(), 40);
        assert_eq!(size_of::<PhaseInfo>(), 16);
    }
}
