//! Global legality for `Avatar(Chord)` (and generic targets), plus runtime
//! builders and the stabilization driver used by tests and experiments.

use crate::msg::Phase;
use crate::program::ScaffoldProgram;
use crate::target::{ChordTarget, InductiveTarget};
use overlay::Avatar;
use ssim::monitor::{self, Goal};
use ssim::{init::Shape, Config, NodeId, Runtime, Topology};

/// The exact host edge set of the legal `Avatar(target)`: the scaffold edges
/// (tree projection + successor line — "we maintain the scaffold edges after
/// the target network is built", Section 6) plus the projected target edges.
pub fn expected_edges<T: InductiveTarget>(target: &T, ids: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let n = target.n();
    let av = Avatar::new(n, ids.iter().copied());
    let mut edges = avatar_cbt::legal::expected_edges(n, ids);
    edges.extend(av.project_edges(target.target_edges()));
    edges.sort_unstable();
    edges.dedup();
    edges
}

/// True iff the topology and host states form the legal, silent
/// `Avatar(target)` network: every host in phase DONE with the final wave
/// completed, and the topology exactly the expected edge set.
pub fn is_legal<'a, T: InductiveTarget>(
    target: &T,
    topo: &Topology,
    hosts: impl Iterator<Item = &'a ScaffoldProgram<T>>,
) -> bool {
    let hosts: Vec<&ScaffoldProgram<T>> = hosts.collect();
    if hosts.is_empty() {
        return false;
    }
    let ids: Vec<NodeId> = hosts.iter().map(|p| p.core.id()).collect();
    let av = Avatar::new(target.n(), ids.iter().copied());
    for p in &hosts {
        if p.core.phase != Phase::Done {
            return false;
        }
        if p.core.last_wave + 1 != target.waves() as i64 {
            return false;
        }
        let r = av.range_of(p.core.id());
        if p.core.cbt.core.range != (r.lo, r.hi) {
            return false;
        }
    }
    topo.edges() == expected_edges(target, &ids)
}

/// Runtime-level legality for the default Chord target.
pub fn runtime_is_legal(rt: &Runtime<ScaffoldProgram<ChordTarget>>) -> bool {
    let Some(&first) = rt.ids().first() else {
        return false; // all hosts departed: nothing legal to speak of
    };
    let target = *rt.program(first).core.target.chord();
    let t = ChordTarget::classic(target.n());
    let t = if target.finger_count() == t.chord().finger_count() {
        t
    } else {
        ChordTarget::paper(target.n())
    };
    is_legal(&t, rt.topology(), rt.programs().map(|(_, p)| p))
}

/// The Avatar(Chord) legality goal as a composable [`ssim::Monitor`] — the
/// driver form of [`runtime_is_legal`], for [`Runtime::run_monitored`] and
/// scenario runs.
pub fn legality() -> Goal<impl FnMut(&Runtime<ScaffoldProgram<ChordTarget>>) -> bool> {
    monitor::goal("avatar-chord-legal", runtime_is_legal)
}

/// Legality goal for an arbitrary [`InductiveTarget`] instance (the
/// generalized scaffolding pattern of Section 6).
pub fn legality_for<T: InductiveTarget + Clone + Send + 'static>(
    target: T,
) -> Goal<impl FnMut(&Runtime<ScaffoldProgram<T>>) -> bool> {
    monitor::goal(
        "avatar-target-legal",
        move |rt: &Runtime<ScaffoldProgram<T>>| {
            is_legal(&target, rt.topology(), rt.programs().map(|(_, p)| p))
        },
    )
}

/// Build a scaffolding runtime over the given hosts and initial edges.
pub fn runtime(
    target: ChordTarget,
    ids: &[NodeId],
    edges: Vec<(NodeId, NodeId)>,
    cfg: Config,
) -> Runtime<ScaffoldProgram<ChordTarget>> {
    runtime_with_net(target, ids, edges, cfg, ssim::NetModel::ideal())
}

/// [`runtime`] under a network-conditions model: every host's windows —
/// the CBT epoch schedule, beacon staleness horizon, grace windows, and the
/// CHORD-phase switch/wave timeouts — are re-budgeted for the model's
/// per-hop delivery bound `Δ = 1 + delay + jitter`
/// ([`ssim::NetModel::delivery_bound`]), lossy channels additionally get
/// detector patience and merge-message retransmission (see
/// `avatar_cbt::CbtCore::{fault_patience, zip_redundancy}`), and mid-run
/// joiners inherit the same budget from the spawner. With
/// [`ssim::NetModel::ideal`] this is exactly [`runtime`] (`Δ = 1` is the
/// identity).
pub fn runtime_with_net(
    target: ChordTarget,
    ids: &[NodeId],
    edges: Vec<(NodeId, NodeId)>,
    cfg: Config,
    model: ssim::NetModel,
) -> Runtime<ScaffoldProgram<ChordTarget>> {
    let seed = cfg.seed;
    let delta = model.delivery_bound();
    let patience = if model.loss > 0.0 || model.jitter > 0 {
        3 * delta
    } else {
        delta
    };
    let redundancy = if model.loss > 0.0 { 2 } else { 1 };
    let mk = move |v: NodeId| {
        ScaffoldProgram::new(v, target, join_nonce(seed, v))
            .with_delta(delta)
            .with_fault_patience(patience)
            .with_zip_redundancy(redundancy)
    };
    let nodes = ids.iter().map(|&v| (v, mk(v)));
    // Hosts joining mid-run boot exactly like constructed hosts: CBT phase,
    // singleton cluster, seed-derived nonce (and the same delivery-bound
    // budget).
    let mut rt = Runtime::new(cfg, nodes, edges)
        .with_spawner(mk)
        .with_net_model(model);
    // Debug builds continuously audit the quiescence contract (a settled
    // DONE host's step must be a strict no-op) whenever an equivalence-
    // claiming scheduler skips anyone.
    if cfg!(debug_assertions) {
        rt.enable_shadow_check();
    }
    rt
}

fn join_nonce(seed: u64, v: NodeId) -> u64 {
    seed ^ (v as u64 + 7).wrapping_mul(0x9E3779B97F4A7C15)
}

/// Restore a scaffolding runtime from snapshot bytes produced by
/// [`ssim::Runtime::save_snapshot`], re-registering the non-serializable
/// hooks a [`runtime`]-built instance carries: the join spawner (nonces
/// derived from the snapshot's seed, so mid-run joins behave exactly as in
/// the original run) and, in debug builds, the shadow quiescence check.
pub fn restore_runtime(
    bytes: &[u8],
    cfg: Config,
) -> Result<Runtime<ScaffoldProgram<ChordTarget>>, ssim::SnapshotError> {
    let mut rt = Runtime::<ScaffoldProgram<ChordTarget>>::restore_snapshot(bytes, cfg)?;
    let Some(&first) = rt.ids().first() else {
        return Err(ssim::SnapshotError::Corrupt(
            "chord-scaffold restore: no live hosts, cannot infer the target".into(),
        ));
    };
    let target = rt.program(first).core.target;
    let seed = rt.config().seed;
    rt.set_spawner(move |v| ScaffoldProgram::new(v, target, join_nonce(seed, v)));
    if cfg!(debug_assertions) {
        rt.enable_shadow_check();
    }
    Ok(rt)
}

/// Build a scaffolding runtime from a named initial shape with `count`
/// random hosts.
pub fn runtime_from_shape(
    target: ChordTarget,
    count: usize,
    shape: Shape,
    cfg: Config,
) -> Runtime<ScaffoldProgram<ChordTarget>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A);
    let ids = ssim::init::random_ids(count, target.n(), &mut rng);
    let edges = shape.edges(&ids, &mut rng);
    runtime(target, &ids, edges, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_edges_superset_of_scaffold() {
        let t = ChordTarget::classic(64);
        let ids = [3u32, 17, 30, 41, 55];
        let scaffold = avatar_cbt::legal::expected_edges(64, &ids);
        let full = expected_edges(&t, &ids);
        for e in &scaffold {
            assert!(full.contains(e), "missing scaffold edge {e:?}");
        }
        assert!(full.len() > scaffold.len(), "fingers add edges");
    }

    #[test]
    fn fresh_runtime_is_not_legal() {
        let t = ChordTarget::classic(16);
        let rt = runtime(t, &[3, 9], vec![(3, 9)], Config::seeded(5));
        assert!(!runtime_is_legal(&rt));
    }
}
