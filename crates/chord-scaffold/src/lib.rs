//! # chord-scaffold — self-stabilizing Avatar(Chord) via network scaffolding
//!
//! The paper's primary contribution (Berns, SPAA 2021): the first time- and
//! space-efficient self-stabilizing algorithm for a robust overlay topology.
//! From **any** weakly-connected initial configuration, the protocol
//!
//! 1. builds the `Avatar(Cbt(N))` **scaffold** with the embedded
//!    self-stabilizing algorithm (`avatar-cbt` crate) — expected `O(log² N)`
//!    rounds;
//! 2. grows the `Chord(N)` fingers on top with `log N` **PIF waves**
//!    (Algorithm 1, [`protocol`]): wave 0 realizes the base ring (its edges
//!    pre-exist in the embedding except the ring closure, which is walked up
//!    the tree to the root), and wave `k` adds the k-th finger of every guest
//!    in one introduction per host pair — `O(log² N)` rounds;
//! 3. falls **silent** ([`msg::Phase::Done`]): in a legal configuration no
//!    messages flow; any perturbation wakes the affected hosts back into the
//!    CBT phase.
//!
//! Phase selection (Section 4.4) is local: the `scaffolded` predicate of
//! Definition 3 is checked every round during the CHORD phase, and any
//! violation — including the adversarial "false Chord" states of Lemma 4 —
//! reverts the host to the CBT phase within `O(log N)` rounds, having added
//! at most one edge per host (degree at most doubles, Lemma 4).
//!
//! The [`target`] module generalizes the construction into the paper's
//! **network scaffolding** design pattern (Section 6): any
//! *triangle-inductive* target topology can be plugged in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod legal;
pub mod msg;
pub mod program;
pub mod protocol;
pub mod target;

pub use legal::{
    expected_edges, is_legal, legality, legality_for, restore_runtime, runtime, runtime_from_shape,
    runtime_is_legal, runtime_with_net,
};
pub use msg::{Phase, PhaseInfo, ScafMsg};
pub use program::ScaffoldProgram;
pub use protocol::{ScafIo, ScaffoldCore};
pub use target::{ChordTarget, InductiveTarget, TruncatedChordTarget};
