//! The combined self-stabilizing protocol: Avatar(CBT) scaffold construction
//! plus Algorithm 1's PIF finger waves, glued by the phase machinery of
//! Section 4.4.
//!
//! Each host runs exactly one of three modes per round:
//! * `phase = CBT` — the embedded [`avatar_cbt::CbtCore`] executes. When a
//!   cluster root's feedback wave reports the whole network clean, it
//!   initiates the CBT→CHORD switch wave.
//! * `phase = CHORD` — Algorithm 1 executes: `PIF(MakeFinger(k))` waves add
//!   finger `k` for every guest; the `scaffolded` predicate (Definition 3)
//!   is evaluated every round and any violation reverts the host to CBT.
//! * `phase = DONE` — the host is silent. It only watches its neighbor list;
//!   any change (or any incoming message) drops it back to CBT.

use crate::msg::{Phase, PhaseInfo, ScafMsg};
use crate::target::InductiveTarget;
use avatar_cbt::hosttree::{self, required_edge};
use avatar_cbt::{CbtCore, CbtMsg, NetIo};
use rand::rngs::SmallRng;
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};
use ssim::NodeId;
use ssim::{CompactMap, CompactSet};

/// I/O surface for the scaffolding protocol (mirrors [`avatar_cbt::NetIo`]
/// at the wrapped message type).
pub trait ScafIo {
    /// This node's identifier.
    fn id(&self) -> NodeId;
    /// Current round.
    fn round(&self) -> u64;
    /// Sorted round-start neighbors.
    fn neighbors(&self) -> &[NodeId];
    /// True iff `v` is a round-start neighbor.
    fn is_neighbor(&self, v: NodeId) -> bool {
        self.neighbors().binary_search(&v).is_ok()
    }
    /// The node's deterministic PRNG.
    fn rng(&mut self) -> &mut SmallRng;
    /// Send a protocol message.
    fn send(&mut self, to: NodeId, msg: ScafMsg);
    /// Introduce `a` and `b`.
    fn link(&mut self, a: NodeId, b: NodeId);
    /// Delete the incident edge to `v`.
    fn unlink(&mut self, v: NodeId);
}

/// Adapter presenting a [`ScafIo`] as the CBT protocol's [`NetIo`].
struct CbtAdapter<'a, IO: ScafIo>(&'a mut IO);

impl<IO: ScafIo> NetIo for CbtAdapter<'_, IO> {
    fn id(&self) -> NodeId {
        self.0.id()
    }
    fn round(&self) -> u64 {
        self.0.round()
    }
    fn neighbors(&self) -> &[NodeId] {
        self.0.neighbors()
    }
    fn rng(&mut self) -> &mut SmallRng {
        self.0.rng()
    }
    fn send(&mut self, to: NodeId, msg: CbtMsg) {
        self.0.send(to, ScafMsg::Cbt(msg));
    }
    fn link(&mut self, a: NodeId, b: NodeId) {
        self.0.link(a, b);
    }
    fn unlink(&mut self, v: NodeId) {
        self.0.unlink(v);
    }
}

/// An in-flight PIF wave on this host.
#[derive(Debug, Clone)]
struct ActiveWave {
    k: u32,
    pending: Vec<NodeId>,
    ring0: Option<NodeId>,
    ring_n: Option<NodeId>,
}

/// The host state of the combined protocol.
#[derive(Debug, Clone)]
pub struct ScaffoldCore<T: InductiveTarget> {
    /// The target topology being built.
    pub target: T,
    /// The embedded scaffold protocol (cluster state, view, schedule).
    pub cbt: CbtCore,
    /// Current phase.
    pub phase: Phase,
    /// Highest wave whose feedback completed here (−1 = none).
    pub last_wave: i64,
    active: Option<ActiveWave>,
    /// Phase info last heard from each neighbor: `(round, info)`.
    pview: CompactMap<NodeId, (u64, PhaseInfo)>,
    /// First round each current neighbor was observed adjacent (edges
    /// created mid-wave get a grace period before phase info is expected).
    seen_since: CompactMap<NodeId, u64>,
    /// Round the host entered the CHORD phase.
    switch_round: u64,
    /// Root only: round at which to launch wave 0.
    wave0_at: Option<u64>,
    /// Round of the last wave progress (timeout tracking).
    last_progress: u64,
    /// DONE-wave machinery: children acks pending, armed flag, and the
    /// parent snapshotted at arming time (views go stale once beacons
    /// quiesce).
    done_pending: Option<Vec<NodeId>>,
    done_parent: Option<NodeId>,
    armed: bool,
    /// Neighbor list cached on entering DONE.
    done_neighbors: Option<Vec<NodeId>>,
    done_grace: u8,
    /// Statistics: CHORD→CBT reversions and DONE completions.
    pub reverts: u64,
    /// Number of times this host reached DONE.
    pub completions: u64,
}

/// Tolerance window for phase disagreement while a switch wave propagates,
/// and the per-wave progress timeout, both `Θ(log N)` — budgeted in
/// message hops and scaled by the per-hop delivery bound `Δ`
/// (see [`avatar_cbt::Schedule::with_delta`]; `Δ = 1` is the classic
/// channel).
fn switch_window(h: u64, delta: u64) -> u64 {
    delta * (2 * h + 8)
}
fn wave_timeout(h: u64, delta: u64) -> u64 {
    delta * (6 * h + 24)
}

impl<T: InductiveTarget> ScaffoldCore<T> {
    /// A host starting in the CBT phase as a singleton cluster.
    pub fn new(id: NodeId, target: T, nonce: u64) -> Self {
        let n = target.n();
        Self {
            target,
            cbt: CbtCore::new(id, n, nonce),
            phase: Phase::Cbt,
            last_wave: -1,
            active: None,
            pview: CompactMap::new(),
            switch_round: 0,
            seen_since: CompactMap::new(),
            wave0_at: None,
            last_progress: 0,
            done_pending: None,
            done_parent: None,
            armed: false,
            done_neighbors: None,
            done_grace: 0,
            reverts: 0,
            completions: 0,
        }
    }

    /// Re-budget this host for a per-hop delivery bound of `delta` rounds:
    /// the embedded CBT core re-derives its schedule and grace windows
    /// ([`CbtCore::with_delta`]), and the CHORD-phase windows
    /// (`switch_window`, `wave_timeout`, beacon-age tolerance, DONE grace)
    /// scale with it too. `with_delta(1)` is the identity.
    #[must_use]
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.cbt = self.cbt.with_delta(delta);
        self
    }

    /// Override the CBT detector's fault patience
    /// ([`CbtCore::with_fault_patience`]).
    #[must_use]
    pub fn with_fault_patience(mut self, rounds: u64) -> Self {
        self.cbt = self.cbt.with_fault_patience(rounds);
        self
    }

    /// Retransmit merge-critical CBT messages
    /// ([`CbtCore::with_zip_redundancy`]).
    #[must_use]
    pub fn with_zip_redundancy(mut self, copies: u8) -> Self {
        self.cbt = self.cbt.with_zip_redundancy(copies);
        self
    }

    /// Send a wave-critical message `zip_redundancy` times: the switch /
    /// target / DONE waves are single-shot tree descents and ascents, so
    /// one lost message stalls the wave until the timeout reverts the
    /// whole phase. The handlers are duplicate-tolerant. One copy (the
    /// default, and the ideal-channel setting) is the classic protocol.
    fn send_critical(&self, io: &mut impl ScafIo, to: NodeId, msg: ScafMsg) {
        for _ in 1..self.cbt.zip_redundancy {
            io.send(to, msg.clone());
        }
        io.send(to, msg);
    }

    /// Host identifier.
    pub fn id(&self) -> NodeId {
        self.cbt.id
    }

    /// True iff the host is *settled* in the DONE phase: the post-wave
    /// grace window has drained and the neighbor baseline is cached, so —
    /// absent messages or topology changes — its next `step` is a strict
    /// no-op. This is the engine's quiescence contract
    /// ([`ssim::Program::is_quiescent`]): a freshly-DONE host still counts
    /// down its grace window and must keep being scheduled.
    pub fn is_settled(&self) -> bool {
        self.phase == Phase::Done && self.done_grace == 0 && self.done_neighbors.is_some()
    }

    /// Install the **settled DONE** state directly: phase DONE with the
    /// final wave completed, grace drained, and the given neighbor list
    /// cached as the baseline. Test/bench fixture machinery — together
    /// with installed cluster state and warmed beacon views this puts a
    /// runtime into the legal, silent Avatar(target) configuration without
    /// running the (hours-long at large sizes) from-scratch stabilization;
    /// see `scaffold_bench::legal_chord_runtime`. Not a protocol action.
    pub fn install_done(&mut self, neighbors: &[NodeId]) {
        self.phase = Phase::Done;
        self.last_wave = self.target.waves() as i64 - 1;
        self.active = None;
        self.armed = false;
        self.done_pending = None;
        self.done_parent = None;
        self.wave0_at = None;
        self.done_grace = 0;
        self.done_neighbors = Some(neighbors.to_vec());
    }

    /// Greedy guest-space routing of an application request (the
    /// [`ssim::workload::Router`] decision): deliver when this host's
    /// responsible range covers the key, otherwise forward to the current
    /// neighbor whose (beaconed) range minimizes the remaining *clockwise*
    /// ring distance to the key — the classic Chord lookup rule, evaluated
    /// against live host state instead of an ideal finger table.
    ///
    /// Neighbor positions come from stale-tolerant beacon lookups
    /// (`NeighborView::latest` — cluster state is frozen through the
    /// CHORD and DONE phases; during CBT stabilization the views may be
    /// wrong, in which case the request bounces and retries — that race is
    /// exactly what the live-traffic experiments measure). Strict
    /// improvement is required, so a request never overshoots; with the
    /// full finger set installed this takes `O(log N)` hops.
    pub fn route_request(&self, key: u32, neighbors: &[NodeId]) -> ssim::workload::RouteStep {
        use ssim::workload::RouteStep;
        let n = self.target.n();
        let key = key % n;
        if self.cbt.core.covers(key) {
            return RouteStep::Deliver;
        }
        // Clockwise distance from a responsible range to the key: 0 when
        // covered, else measured from the range's last guest (the closest
        // position the host simulates).
        let dist = |range: (u32, u32)| -> u32 {
            if range.0 <= key && key < range.1 {
                0
            } else {
                (key + n - ((range.1 - 1) % n)) % n
            }
        };
        // Guard the own range like neighbor ranges: corruption can leave it
        // empty, and an empty range must read as "infinitely far" (any
        // positioned neighbor improves), not underflow in `dist`.
        let own = self.cbt.core.range;
        let mine = if own.0 < own.1 { dist(own) } else { u32::MAX };
        let mut best: Option<(u32, NodeId)> = None;
        for &v in neighbors {
            let Some(b) = self.cbt.view.latest(v) else {
                continue; // no beacon ever heard: position unknown
            };
            if b.range.0 >= b.range.1 {
                continue; // malformed/empty range
            }
            let d = dist(b.range);
            // First strict minimum wins (neighbors are sorted): fully
            // deterministic tie-breaking.
            if d < mine && best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, v));
            }
        }
        match best {
            Some((_, v)) => RouteStep::Forward(v),
            None => RouteStep::Unroutable,
        }
    }

    /// Execute one synchronous round.
    pub fn step(&mut self, io: &mut impl ScafIo, inbox: &[(NodeId, ScafMsg)]) {
        let round = io.round();
        // Phase info and CBT beacons are ingested in every phase so views
        // stay fresh regardless of which algorithm is executing.
        for (from, m) in inbox {
            match m {
                ScafMsg::Phase(pi) => {
                    self.pview.insert(*from, (round, *pi));
                }
                ScafMsg::Cbt(CbtMsg::Beacon(b)) if self.phase != Phase::Cbt => {
                    self.cbt.view.record(*from, round, *b);
                }
                _ => {}
            }
        }

        match self.phase {
            Phase::Cbt => self.step_cbt(io, inbox),
            Phase::Chord => self.step_chord(io, inbox),
            Phase::Done => self.step_done(io, inbox),
        }
    }

    // ------------------------------------------------------------------
    // CBT phase
    // ------------------------------------------------------------------

    fn step_cbt(&mut self, io: &mut impl ScafIo, inbox: &[(NodeId, ScafMsg)]) {
        let round = io.round();
        let cbt_inbox: Vec<(NodeId, CbtMsg)> = inbox
            .iter()
            .filter_map(|(v, m)| match m {
                ScafMsg::Cbt(c) => Some((*v, c.clone())),
                _ => None,
            })
            .collect();
        let events = {
            let mut adapter = CbtAdapter(io);
            self.cbt.step(&mut adapter, &cbt_inbox)
        };

        // A switch wave reaching us from our (already switched) parent.
        let start = inbox.iter().any(|(_, m)| matches!(m, ScafMsg::StartChord));
        if start && !events.reset {
            self.enter_chord(io, round, false);
            return;
        }

        // The root saw a fully clean feedback wave: the scaffold is built.
        if events.cluster_clean && self.cbt.is_root() {
            self.enter_chord(io, round, true);
        }
    }

    fn enter_chord(&mut self, io: &mut impl ScafIo, round: u64, as_root: bool) {
        self.phase = Phase::Chord;
        self.last_wave = -1;
        self.active = None;
        self.switch_round = round;
        self.last_progress = round;
        self.done_pending = None;
        self.armed = false;
        self.done_neighbors = None;
        let h = self.cbt.sched.height();
        self.wave0_at = as_root.then_some(round + switch_window(h, self.cbt.sched.delta()));
        let neighbors: Vec<NodeId> = io.neighbors().to_vec();
        for c in self.children(round, &neighbors) {
            self.send_critical(io, c, ScafMsg::StartChord);
        }
        self.emit_chord_beacons(io, &neighbors);
    }

    fn children(&self, round: u64, neighbors: &[NodeId]) -> Vec<NodeId> {
        hosttree::children(
            &self.cbt.cbt,
            &self.cbt.core,
            &self.cbt.view,
            round,
            neighbors,
        )
    }

    fn parent(&self, round: u64, neighbors: &[NodeId]) -> Option<NodeId> {
        hosttree::parent(
            &self.cbt.cbt,
            &self.cbt.core,
            &self.cbt.view,
            round,
            neighbors,
        )
    }

    /// The host covering guest `g`, from own range or the fresh view.
    fn host_of(&self, round: u64, neighbors: &[NodeId], g: u32) -> Option<NodeId> {
        hosttree::host_for(
            self.id(),
            &self.cbt.core,
            &self.cbt.view,
            round,
            neighbors,
            g,
        )
    }

    // ------------------------------------------------------------------
    // CHORD phase (Algorithm 1)
    // ------------------------------------------------------------------

    fn emit_chord_beacons(&self, io: &mut impl ScafIo, neighbors: &[NodeId]) {
        if self.armed {
            return; // quiescing before DONE
        }
        let b = self.cbt.beacon();
        let pi = PhaseInfo {
            phase: self.phase,
            last_wave: self.last_wave,
        };
        for &v in neighbors {
            io.send(v, ScafMsg::Cbt(CbtMsg::Beacon(b)));
            io.send(v, ScafMsg::Phase(pi));
        }
    }

    fn revert_to_cbt(&mut self) {
        self.phase = Phase::Cbt;
        self.active = None;
        self.done_pending = None;
        self.armed = false;
        self.wave0_at = None;
        self.reverts += 1;
    }

    /// Force an immediate reversion to the CBT phase, as if Definition 3 had
    /// tripped locally. Used by the adversary layer: a host whose cluster
    /// identity has been skewed must *act* on the lie (beacon it to its
    /// neighbors every round) rather than sit silent in DONE.
    pub fn force_revert(&mut self) {
        self.revert_to_cbt();
    }

    /// Definition 3's `scaffolded` predicate, evaluated at host granularity:
    /// intact scaffold structure, and wave states of neighbors within one
    /// step of ours.
    fn scaffolded_ok(&self, round: u64, neighbors: &[NodeId]) -> bool {
        let h = self.cbt.sched.height();
        // Condition 1: scaffold structure (ranges, covers, successor line)
        // intact. Finger edges are the tolerated extras.
        let fault = avatar_cbt::detector::check_stale_tolerant(
            self.id(),
            self.target.n(),
            &self.cbt.cbt,
            &self.cbt.core,
            &self.cbt.view,
            round,
            neighbors,
            true,
        );
        if fault.is_some() {
            return false;
        }
        // Conditions 2–4: neighbors' waves within one step of ours, and
        // every neighbor participating in the CHORD phase (after the switch
        // wave has had time to reach everyone).
        let delta = self.cbt.sched.delta();
        for &v in neighbors {
            match self.pview.get(&v) {
                // Freshness is budgeted in delivery bounds: phase infos
                // flow every round, but under WAN conditions consecutive
                // arrivals legitimately gap by jitter and the odd loss —
                // only `3Δ` rounds of silence make an entry stale (with
                // `Δ = 1` this is the classic 3-round window).
                Some((r, pi)) if round.saturating_sub(*r) < 3 * delta => {
                    if pi.phase == Phase::Chord && (pi.last_wave - self.last_wave).abs() > 1 {
                        return false;
                    }
                }
                _ => {
                    // A neighbor whose last word was "final wave complete"
                    // has legitimately armed for DONE and gone quiet.
                    if self.pview.get(&v).is_some_and(|(_, pi)| {
                        pi.phase == Phase::Chord && pi.last_wave + 1 == self.target.waves() as i64
                    }) {
                        continue;
                    }
                    // Otherwise a silent neighbor is only suspicious once
                    // both the switch wave has settled and the edge has
                    // existed long enough for beacons to flow (waves
                    // legitimately create new edges mid-phase).
                    let age =
                        round.saturating_sub(self.seen_since.get(&v).copied().unwrap_or(round));
                    if round > self.switch_round + switch_window(h, delta) && age > 3 * delta {
                        return false;
                    }
                }
            }
        }
        true
    }

    fn step_chord(&mut self, io: &mut impl ScafIo, inbox: &[(NodeId, ScafMsg)]) {
        let round = io.round();
        let neighbors: Vec<NodeId> = io.neighbors().to_vec();
        let h = self.cbt.sched.height();

        // Track adjacency age for the phase-info expectations.
        self.seen_since
            .retain(|v, _| neighbors.binary_search(v).is_ok());
        for &v in &neighbors {
            if !self.seen_since.contains_key(&v) {
                self.seen_since.insert(v, round);
            }
        }

        if !self.armed && !self.scaffolded_ok(round, &neighbors) {
            self.revert_to_cbt();
            return;
        }
        if round.saturating_sub(self.last_progress) > wave_timeout(h, self.cbt.sched.delta()) {
            self.revert_to_cbt();
            return;
        }

        for (from, m) in inbox {
            match m {
                ScafMsg::Prop { k } => self.on_prop(io, &neighbors, *k),
                ScafMsg::Fb { k, ring0, ring_n } => {
                    self.on_fb(io, &neighbors, *from, *k, *ring0, *ring_n)
                }
                ScafMsg::StartDone => self.on_start_done(io, &neighbors),
                ScafMsg::FbDone => self.on_fb_done(io, &neighbors, *from),
                _ => {}
            }
            if self.phase != Phase::Chord {
                return; // a handler reverted or completed
            }
        }

        // Retry a deferred wave completion (its feedback arrived before the
        // view caught up with freshly created edges).
        if let Some(w) = self.active.as_ref() {
            if w.pending.is_empty() {
                let k = w.k;
                self.try_complete_wave(io, &neighbors, k);
                if self.phase != Phase::Chord {
                    return;
                }
            }
        }

        // Root: launch wave 0 once the switch wave has propagated.
        if let Some(at) = self.wave0_at {
            if round >= at && self.cbt.is_root() && self.last_wave == -1 && self.active.is_none() {
                self.wave0_at = None;
                self.start_wave(io, &neighbors, 0);
            }
        }

        self.emit_chord_beacons(io, &neighbors);
    }

    fn start_wave(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId], k: u32) {
        let round = io.round();
        let children = self.children(round, neighbors);
        for &c in &children {
            self.send_critical(io, c, ScafMsg::Prop { k });
        }
        self.active = Some(ActiveWave {
            k,
            pending: children,
            ring0: None,
            ring_n: None,
        });
        self.last_progress = round;
        if self.active.as_ref().is_some_and(|w| w.pending.is_empty()) {
            self.try_complete_wave(io, neighbors, k);
        }
    }

    fn on_prop(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId], k: u32) {
        if self.active.as_ref().is_some_and(|w| w.k == k) {
            return; // duplicate
        }
        if k as i64 <= self.last_wave {
            // Stale duplicate of a wave we already completed (a lossy
            // channel retransmits wave messages, and a duplicated copy can
            // outlive the wave on a leaf, which completes instantly) — not
            // an inconsistency.
            return;
        }
        if k as i64 != self.last_wave + 1 || self.active.is_some() {
            // Algorithm 1 line 7 / 14: inconsistent wave ⇒ phase := CBT.
            self.revert_to_cbt();
            return;
        }
        self.start_wave(io, neighbors, k);
    }

    fn on_fb(
        &mut self,
        io: &mut impl ScafIo,
        neighbors: &[NodeId],
        from: NodeId,
        k: u32,
        ring0: Option<NodeId>,
        ring_n: Option<NodeId>,
    ) {
        let Some(w) = self.active.as_mut() else {
            return;
        };
        if w.k != k {
            return;
        }
        w.pending.retain(|&c| c != from);
        if ring0.is_some() {
            w.ring0 = ring0;
        }
        if ring_n.is_some() {
            w.ring_n = ring_n;
        }
        if w.pending.is_empty() {
            self.try_complete_wave(io, neighbors, k);
        }
    }

    /// The feedback action of Algorithm 1 for all guests of this host, then
    /// either ascend (member) or advance to the next wave (root). Returns
    /// false (and changes nothing) when a just-created neighbor's beacon has
    /// not arrived yet — the completion is retried next round, bounded by
    /// the wave timeout.
    fn try_complete_wave(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId], k: u32) -> bool {
        let round = io.round();
        let me = self.id();
        let (lo, hi) = self.cbt.core.range;

        // Feedback action: create this wave's finger edges, projected onto
        // the host network, one introduction per distinct host pair. All
        // lookups must resolve before anything is committed.
        let mut links: Vec<(NodeId, NodeId)> = Vec::new();
        for a in lo..hi {
            let Some((x, y)) = self.target.feedback_edge(a, k) else {
                continue;
            };
            let (Some(hx), Some(hy)) = (
                self.host_of(round, neighbors, x),
                self.host_of(round, neighbors, y),
            ) else {
                return false; // view not caught up: retry next round
            };
            if hx != hy {
                links.push((hx.min(hy), hx.max(hy)));
            }
        }
        links.sort_unstable();
        links.dedup();
        // Every introduction endpoint must already be adjacent (the wave
        // induction invariant); a fresh edge whose beacon arrived implies
        // the edge still exists, so a miss here means the induction has not
        // caught up yet either — retry, bounded by the wave timeout.
        let adjacent = |v: NodeId| v == me || neighbors.binary_search(&v).is_ok();
        if links.iter().any(|&(x, y)| !(adjacent(x) && adjacent(y))) {
            return false;
        }
        for (x, y) in links {
            io.link(x, y);
        }

        // Wave 0: contribute/forward the walked edges to guests 0 and N−1.
        let (mut ring0, mut ring_n) = self
            .active
            .as_ref()
            .map(|w| (w.ring0, w.ring_n))
            .unwrap_or((None, None));
        if k == 0 && self.target.closes_ring() {
            if self.cbt.core.covers(0) {
                ring0 = Some(me);
            }
            if self.cbt.core.covers(self.target.n() - 1) {
                ring_n = Some(me);
            }
        }

        self.active = None;
        self.last_wave = k as i64;
        self.last_progress = round;

        if self.cbt.is_root() {
            if k == 0 && self.target.closes_ring() {
                // Close the guest ring (Algorithm 1 lines 6–7).
                if let (Some(a), Some(b)) = (ring0, ring_n) {
                    if a != b {
                        let ok = |v: NodeId| v == me || neighbors.binary_search(&v).is_ok();
                        if !(ok(a) && ok(b)) {
                            self.revert_to_cbt();
                            return true;
                        }
                        io.link(a, b);
                    }
                } else {
                    self.revert_to_cbt();
                    return true;
                }
            }
            if k + 1 < self.target.waves() {
                self.start_wave(io, neighbors, k + 1);
            } else {
                // All fingers built: run the DONE handshake.
                self.begin_done_wave(io, neighbors);
            }
        } else {
            let Some(p) = self.parent(round, neighbors) else {
                self.revert_to_cbt();
                return true;
            };
            // Walk the ring endpoints one level up before the feedback.
            for ep in [ring0, ring_n].into_iter().flatten() {
                if ep != me && ep != p {
                    if !io.is_neighbor(ep) {
                        self.revert_to_cbt();
                        return true;
                    }
                    io.link(ep, p);
                }
            }
            self.send_critical(io, p, ScafMsg::Fb { k, ring0, ring_n });
        }
        true
    }

    // ------------------------------------------------------------------
    // DONE handshake: StartDone↓ (arm + prune), FbDone↑, then silence.
    // ------------------------------------------------------------------

    fn begin_done_wave(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId]) {
        let round = io.round();
        // Final transmission before quiescing: let neighbors see the
        // completed last wave so their `scaffolded` checks tolerate our
        // silence while the DONE wave descends.
        self.emit_chord_beacons(io, neighbors);
        self.armed = true;
        self.last_progress = round;
        // Snapshot the tree relations while beacons are still fresh.
        self.done_parent = self.parent(round, neighbors);
        let children = self.children(round, neighbors);
        self.prune_for_target(io, neighbors);
        for &c in &children {
            self.send_critical(io, c, ScafMsg::StartDone);
        }
        if children.is_empty() {
            // Leaf: ack immediately and fall silent.
            if !self.cbt.is_root() {
                if let Some(p) = self.done_parent {
                    self.send_critical(io, p, ScafMsg::FbDone);
                }
            }
            self.enter_done();
        } else {
            self.done_pending = Some(children);
        }
    }

    fn on_start_done(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId]) {
        if self.armed {
            return; // duplicate: the DONE descent is already running here
        }
        if self.last_wave + 1 != self.target.waves() as i64 || self.active.is_some() {
            self.revert_to_cbt();
            return;
        }
        self.begin_done_wave(io, neighbors);
    }

    fn on_fb_done(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId], from: NodeId) {
        let Some(pending) = self.done_pending.as_mut() else {
            return;
        };
        pending.retain(|&c| c != from);
        if pending.is_empty() {
            self.done_pending = None;
            let _ = neighbors;
            if self.cbt.is_root() {
                self.enter_done();
            } else if let Some(p) = self.done_parent {
                self.send_critical(io, p, ScafMsg::FbDone);
                self.enter_done();
            } else {
                self.revert_to_cbt();
            }
        }
    }

    fn enter_done(&mut self) {
        self.phase = Phase::Done;
        self.armed = false;
        // Hosts in sibling subtrees keep beaconing until the DONE wave
        // reaches them: tolerate traffic for a full descent-plus-ascent of
        // the host tree before treating messages as a wake-up signal.
        self.done_grace = ((2 * (self.cbt.sched.height() + 1) + 8) * self.cbt.sched.delta())
            .min(u8::MAX as u64) as u8;
        self.done_neighbors = None;
        self.completions += 1;
    }

    /// Remove host edges the final Avatar(target) does not require: kept are
    /// scaffold-required edges (tree projection + successor line) and edges
    /// realizing a target guest edge. Uses stale-tolerant beacon lookups:
    /// neighbors that armed before us stopped beaconing, but their cluster
    /// state is frozen for the whole CHORD phase.
    fn prune_for_target(&mut self, io: &mut impl ScafIo, neighbors: &[NodeId]) {
        let me = self.id();
        let (lo, hi) = self.cbt.core.range;
        let covering = |g: u32| -> Option<NodeId> {
            if self.cbt.core.covers(g) {
                return Some(me);
            }
            neighbors
                .iter()
                .find(|&&v| {
                    self.cbt.view.latest(v).is_some_and(|b| {
                        b.cid == self.cbt.core.cid && b.range.0 <= g && g < b.range.1
                    })
                })
                .copied()
        };
        let mut keep: CompactSet<NodeId> = CompactSet::new();
        // Scaffold-required neighbors.
        for &v in neighbors {
            match self.cbt.view.latest(v) {
                Some(b) => {
                    if b.cid == self.cbt.core.cid
                        && required_edge(&self.cbt.cbt, self.cbt.core.range, b.range)
                    {
                        keep.insert(v);
                    }
                }
                None => {
                    keep.insert(v); // truly unknown: keep conservatively
                }
            }
        }
        // Target-required neighbors: hosts of the target neighborhoods of my
        // guests (both edge directions, ring included).
        for a in lo..hi {
            for g in self.target.guest_neighbors(a) {
                if let Some(hg) = covering(g) {
                    if hg != me {
                        keep.insert(hg);
                    }
                }
            }
        }
        for &v in neighbors {
            if !keep.contains(&v) {
                io.unlink(v);
            }
        }
    }

    // ------------------------------------------------------------------
    // DONE phase: silence.
    // ------------------------------------------------------------------

    fn step_done(&mut self, io: &mut impl ScafIo, inbox: &[(NodeId, ScafMsg)]) {
        let neighbors: Vec<NodeId> = io.neighbors().to_vec();
        match &self.done_neighbors {
            None => {
                // The topology incident to this host is final at Done entry
                // (it pruned its own non-required edges at arming), so the
                // baseline is cached immediately.
                self.done_neighbors = Some(neighbors.clone());
            }
            Some(cache) => {
                if *cache != neighbors {
                    // Topology perturbed: wake up and rebuild.
                    self.revert_to_cbt();
                    return;
                }
            }
        }
        // The grace window only tolerates residual *traffic* from sibling
        // subtrees the DONE wave has not reached yet.
        if self.done_grace > 0 {
            self.done_grace -= 1;
            return;
        }
        if !inbox.is_empty() {
            // Someone is talking: a neighbor detected a fault. Join in.
            self.revert_to_cbt();
        }
    }
}

impl Persist for ActiveWave {
    fn save(&self, w: &mut Writer) {
        w.u32(self.k);
        self.pending.save(w);
        self.ring0.save(w);
        self.ring_n.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            k: r.u32()?,
            pending: Vec::load(r)?,
            ring0: Option::load(r)?,
            ring_n: Option::load(r)?,
        })
    }
}

impl<T: InductiveTarget + Persist> Persist for ScaffoldCore<T> {
    fn save(&self, w: &mut Writer) {
        self.target.save(w);
        self.cbt.save(w);
        self.phase.save(w);
        w.i64(self.last_wave);
        self.active.save(w);
        // The compact maps iterate sorted by neighbor id — the canonical
        // bytes the old collect-and-sort encodings produced.
        self.pview.save(w);
        self.seen_since.save(w);
        w.u64(self.switch_round);
        self.wave0_at.save(w);
        w.u64(self.last_progress);
        self.done_pending.save(w);
        self.done_parent.save(w);
        w.bool(self.armed);
        self.done_neighbors.save(w);
        w.u8(self.done_grace);
        w.u64(self.reverts);
        w.u64(self.completions);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        let target = T::load(r)?;
        let cbt = CbtCore::load(r)?;
        let phase = Phase::load(r)?;
        let last_wave = r.i64()?;
        let active = Option::load(r)?;
        // The map loads reject out-of-order or duplicate neighbor ids.
        let pview = CompactMap::load(r)?;
        let seen_since = CompactMap::load(r)?;
        Ok(Self {
            target,
            cbt,
            phase,
            last_wave,
            active,
            pview,
            seen_since,
            switch_round: r.u64()?,
            wave0_at: Option::load(r)?,
            last_progress: r.u64()?,
            done_pending: Option::load(r)?,
            done_parent: Option::load(r)?,
            armed: r.bool()?,
            done_neighbors: Option::load(r)?,
            done_grace: r.u8()?,
            reverts: r.u64()?,
            completions: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::ChordTarget;

    /// Corruption can leave the own responsible range empty; routing must
    /// degrade to Unroutable (retry/TTL), never underflow or panic.
    #[test]
    fn routing_with_corrupted_empty_own_range_is_safe() {
        let mut c = ScaffoldCore::new(5, ChordTarget::classic(64), 9);
        c.cbt.core.range = (7, 7);
        assert_eq!(
            c.route_request(3, &[]),
            ssim::workload::RouteStep::Unroutable
        );
        c.cbt.core.range = (3, 0);
        assert_eq!(
            c.route_request(9, &[]),
            ssim::workload::RouteStep::Unroutable
        );
    }

    #[test]
    fn new_core_starts_in_cbt() {
        let c = ScaffoldCore::new(5, ChordTarget::classic(64), 9);
        assert_eq!(c.phase, Phase::Cbt);
        assert_eq!(c.last_wave, -1);
    }

    #[test]
    fn windows_are_logarithmic() {
        assert!(switch_window(10, 1) < 40);
        assert!(wave_timeout(10, 1) < 100);
        assert_eq!(switch_window(10, 3), 3 * switch_window(10, 1));
        assert_eq!(wave_timeout(10, 3), 3 * wave_timeout(10, 1));
    }
}
