//! [`ssim::Program`] wrapper for the combined scaffolding protocol.

use crate::msg::ScafMsg;
use crate::protocol::{ScafIo, ScaffoldCore};
use crate::target::{ChordTarget, InductiveTarget};
use rand::rngs::SmallRng;
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};
use ssim::workload::{RouteStep, Router};
use ssim::{Ctx, NodeId, Program};

/// A host running the self-stabilizing Avatar(target) protocol. The default
/// target is [`ChordTarget`], the paper's Avatar(Chord).
#[derive(Debug, Clone)]
pub struct ScaffoldProgram<T: InductiveTarget = ChordTarget> {
    /// The protocol state.
    pub core: ScaffoldCore<T>,
}

impl<T: InductiveTarget> ScaffoldProgram<T> {
    /// A host starting in the CBT phase as a singleton cluster.
    pub fn new(id: NodeId, target: T, nonce: u64) -> Self {
        Self {
            core: ScaffoldCore::new(id, target, nonce),
        }
    }

    /// Re-budget the host for a per-hop delivery bound of `delta` rounds
    /// (see [`ScaffoldCore::with_delta`]). `with_delta(1)` is the identity.
    #[must_use]
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.core = self.core.with_delta(delta);
        self
    }

    /// Override the CBT detector's fault patience
    /// (see [`ScaffoldCore::with_fault_patience`]).
    #[must_use]
    pub fn with_fault_patience(mut self, rounds: u64) -> Self {
        self.core = self.core.with_fault_patience(rounds);
        self
    }

    /// Retransmit merge-critical CBT messages
    /// (see [`ScaffoldCore::with_zip_redundancy`]).
    #[must_use]
    pub fn with_zip_redundancy(mut self, copies: u8) -> Self {
        self.core = self.core.with_zip_redundancy(copies);
        self
    }
}

struct CtxIo<'a, 'b> {
    ctx: &'a mut Ctx<'b, ScafMsg>,
}

impl ScafIo for CtxIo<'_, '_> {
    fn id(&self) -> NodeId {
        self.ctx.id
    }
    fn round(&self) -> u64 {
        self.ctx.round
    }
    fn neighbors(&self) -> &[NodeId] {
        self.ctx.neighbors()
    }
    fn rng(&mut self) -> &mut SmallRng {
        self.ctx.rng()
    }
    fn send(&mut self, to: NodeId, msg: ScafMsg) {
        self.ctx.send(to, msg);
    }
    fn link(&mut self, a: NodeId, b: NodeId) {
        self.ctx.link(a, b);
    }
    fn unlink(&mut self, v: NodeId) {
        self.ctx.unlink(v);
    }
}

impl<T: InductiveTarget> Program for ScaffoldProgram<T> {
    type Msg = ScafMsg;

    fn step(&mut self, ctx: &mut Ctx<'_, ScafMsg>) {
        let inbox: Vec<(NodeId, ScafMsg)> = ctx.inbox().to_vec();
        let mut io = CtxIo { ctx };
        self.core.step(&mut io, &inbox);
    }

    /// The engine's quiescence contract: only a *settled* DONE host (grace
    /// drained, neighbor baseline cached) has a guaranteed-no-op next step;
    /// see [`ScaffoldCore::is_settled`].
    fn is_quiescent(&self) -> bool {
        self.core.is_settled()
    }
}

impl<T: InductiveTarget + Persist> Persist for ScaffoldProgram<T> {
    fn save(&self, w: &mut Writer) {
        self.core.save(w);
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            core: ScaffoldCore::load(r)?,
        })
    }
}

impl<T: InductiveTarget> Router for ScaffoldProgram<T> {
    /// Greedy guest-space Chord lookup over live host links — see
    /// [`ScaffoldCore::route_request`].
    fn route(&self, key: u32, neighbors: &[NodeId]) -> RouteStep {
        self.core.route_request(key, neighbors)
    }
}

impl<T: InductiveTarget> ssim::Sabotage for ScaffoldProgram<T> {
    fn age_observations(&mut self, rounds: u64) {
        self.core.cbt.view.age(rounds);
    }

    /// Skews the embedded cluster identity
    /// ([`avatar_cbt::state::ClusterCore::skew`]) and forces the host out of
    /// its settled phase ([`ScaffoldCore::force_revert`]) so the lie is
    /// actively beaconed instead of sitting inert in a silent DONE host.
    fn skew_identity(&mut self, salt: u64) {
        self.core.cbt.core.skew(salt);
        self.core.cbt.asleep = false;
        self.core.cbt.beacons_enabled = true;
        self.core.cbt.sleep_neighbors = None;
        self.core.force_revert();
    }

    fn plant_observation(&mut self, about: NodeId, salt: u64) -> bool {
        self.core.cbt.view.tamper(about, |b| {
            let mut fake = avatar_cbt::state::ClusterCore {
                cid: b.cid,
                range: b.range,
                cluster_min: b.cluster_min,
            };
            fake.skew(salt);
            b.cid = fake.cid;
            b.range = fake.range;
            b.cluster_min = fake.cluster_min;
        })
    }
}

impl<T: InductiveTarget> ssim::Introspect for ScaffoldProgram<T> {
    fn observation_ages(&self, now: u64) -> Vec<(NodeId, u64)> {
        self.core.cbt.view.ages(now)
    }

    fn identity_digest(&self) -> u64 {
        self.core.cbt.core.digest()
    }

    fn recorded_digest(&self, about: NodeId) -> Option<u64> {
        self.core.cbt.view.latest(about).map(|b| b.digest())
    }
}
