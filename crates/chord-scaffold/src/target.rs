//! The generalized **network scaffolding** pattern (Section 6).
//!
//! A target topology pluggable into the scaffolding protocol must be
//! *triangle-inductive* over the scaffold: every new guest edge `(x, y)` of
//! wave `k` must have a *witness* guest `a` already adjacent to both `x` and
//! `y` (via scaffold edges or earlier waves), because the overlay model only
//! permits a node to connect two of its existing neighbors. Chord is the
//! paper's instance: with fingers `0..k` present, the `k+1` finger of `c0` is
//! created by `b` where `b` is the k-finger of `c0` and `c1` the k-finger of
//! `b` (Section 4.3).
//!
//! The trait packages exactly the components Section 6 lists for the target
//! side of the pattern: the wave count, the per-guest feedback action, and
//! the final edge set (for the local/global checks).

use overlay::chord::Chord;
use overlay::Id;
use ssim::snapshot::{Persist, Reader, SnapshotError, Writer};

/// A target guest topology buildable from the CBT scaffold by inductive PIF
/// waves (the paper's Algorithm 1 generalized).
pub trait InductiveTarget: Clone + Send + Sync + 'static {
    /// Short name for logs and tables.
    fn name(&self) -> &'static str;

    /// Guest capacity `N`.
    fn n(&self) -> u32;

    /// Number of PIF waves (Chord: `log N` — wave 0 builds the base ring,
    /// wave `k` the k-th fingers).
    fn waves(&self) -> u32;

    /// True iff wave 0 must close the guest ring by forwarding edges to
    /// guests `0` and `N − 1` up the tree (Algorithm 1 lines 6–7).
    fn closes_ring(&self) -> bool;

    /// The guest edge created by the feedback action of wave `k` witnessed
    /// by guest `a` (both endpoints are already guest-adjacent to `a`).
    /// `None` when the wave adds no edge at `a` (e.g. Chord's wave 0, whose
    /// edges pre-exist in the scaffold embedding).
    fn feedback_edge(&self, a: Id, k: u32) -> Option<(Id, Id)>;

    /// The complete guest edge set of the target (for legality checking).
    fn target_edges(&self) -> Vec<(Id, Id)>;

    /// The target neighborhood of guest `a` (both edge directions), used to
    /// decide which host edges the final embedding requires.
    fn guest_neighbors(&self, a: Id) -> Vec<Id>;
}

/// The paper's target: `Chord(N)` (Definition 1 / Section 4.2).
#[derive(Debug, Clone, Copy)]
pub struct ChordTarget {
    chord: Chord,
}

impl ChordTarget {
    /// Chord with the conventional `log N` fingers.
    pub fn classic(n: u32) -> Self {
        Self {
            chord: Chord::classic(n),
        }
    }

    /// Chord with Definition 1's `log N − 1` fingers.
    pub fn paper(n: u32) -> Self {
        Self {
            chord: Chord::paper(n),
        }
    }

    /// The underlying finger table description.
    pub fn chord(&self) -> &Chord {
        &self.chord
    }
}

impl InductiveTarget for ChordTarget {
    fn name(&self) -> &'static str {
        "chord"
    }

    fn n(&self) -> u32 {
        self.chord.n()
    }

    fn waves(&self) -> u32 {
        self.chord.finger_count()
    }

    fn closes_ring(&self) -> bool {
        true
    }

    fn feedback_edge(&self, a: Id, k: u32) -> Option<(Id, Id)> {
        if k == 0 {
            // 0th fingers pre-exist in the scaffold (same host or successor
            // host); only the ring closure is new, handled by the wave walk.
            return None;
        }
        let n = self.chord.n();
        let step = 1u32 << (k - 1);
        // b0's (k−1)-finger is a; a's (k−1)-finger is b1. The new edge
        // (b0, b1) is b0's k-th finger.
        let b0 = (a + n - step % n) % n;
        let b1 = (a + step) % n;
        Some((b0, b1))
    }

    fn target_edges(&self) -> Vec<(Id, Id)> {
        self.chord.edges()
    }

    fn guest_neighbors(&self, a: Id) -> Vec<Id> {
        self.chord.neighborhood(a)
    }
}

/// A truncated Chord: only the first `fingers` finger levels. Demonstrates
/// the pattern's pluggability (Section 6's "other target topologies") and
/// provides the ablation target for the finger-count experiments.
#[derive(Debug, Clone, Copy)]
pub struct TruncatedChordTarget {
    chord: Chord,
}

impl TruncatedChordTarget {
    /// `Chord(N)` truncated to `fingers` fingers (`1 ≤ fingers ≤ log N`).
    pub fn new(n: u32, fingers: u32) -> Self {
        Self {
            chord: Chord::with_fingers(n, fingers),
        }
    }
}

impl InductiveTarget for TruncatedChordTarget {
    fn name(&self) -> &'static str {
        "chord-truncated"
    }

    fn n(&self) -> u32 {
        self.chord.n()
    }

    fn waves(&self) -> u32 {
        self.chord.finger_count()
    }

    fn closes_ring(&self) -> bool {
        true
    }

    fn feedback_edge(&self, a: Id, k: u32) -> Option<(Id, Id)> {
        if k == 0 {
            return None;
        }
        let n = self.chord.n();
        let step = 1u32 << (k - 1);
        Some(((a + n - step % n) % n, (a + step) % n))
    }

    fn target_edges(&self) -> Vec<(Id, Id)> {
        self.chord.edges()
    }

    fn guest_neighbors(&self, a: Id) -> Vec<Id> {
        self.chord.neighborhood(a)
    }
}

/// `(n, fingers)` read back with the validation `Chord::with_fingers`
/// asserts, turned into [`SnapshotError::Corrupt`] instead of a panic.
fn load_chord(r: &mut Reader<'_>) -> Result<Chord, SnapshotError> {
    let n = r.u32()?;
    let fingers = r.u32()?;
    if n < 4 || !n.is_power_of_two() {
        return Err(SnapshotError::Corrupt(format!("Chord n = {n}")));
    }
    let m = n.trailing_zeros();
    if !(1..=m).contains(&fingers) {
        return Err(SnapshotError::Corrupt(format!(
            "Chord finger count {fingers} out of range 1..={m}"
        )));
    }
    Ok(Chord::with_fingers(n, fingers))
}

impl Persist for ChordTarget {
    fn save(&self, w: &mut Writer) {
        w.u32(self.chord.n());
        w.u32(self.chord.finger_count());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            chord: load_chord(r)?,
        })
    }
}

impl Persist for TruncatedChordTarget {
    fn save(&self, w: &mut Writer) {
        w.u32(self.chord.n());
        w.u32(self.chord.finger_count());
    }
    fn load(r: &mut Reader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            chord: load_chord(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// The inductive waves must generate exactly the target edge set: the
    /// scaffold-provided ring (wave 0) plus every feedback edge.
    #[test]
    fn chord_waves_generate_target() {
        for n in [8u32, 32, 256] {
            let t = ChordTarget::classic(n);
            let mut built: HashSet<(Id, Id)> = HashSet::new();
            // Wave 0 output: the base ring.
            for i in 0..n {
                let j = (i + 1) % n;
                built.insert((i.min(j), i.max(j)));
            }
            for k in 1..t.waves() {
                for a in 0..n {
                    if let Some((x, y)) = t.feedback_edge(a, k) {
                        assert_ne!(x, y);
                        built.insert((x.min(y), x.max(y)));
                    }
                }
            }
            let expect: HashSet<(Id, Id)> = t.target_edges().into_iter().collect();
            assert_eq!(built, expect, "n={n}");
        }
    }

    /// Witness property: the endpoints of each wave-k feedback edge are both
    /// guest-adjacent to the witness via fingers strictly below k.
    #[test]
    fn feedback_edges_have_valid_witness() {
        let n = 64u32;
        let t = ChordTarget::classic(n);
        for k in 1..t.waves() {
            let step = 1u32 << (k - 1);
            for a in 0..n {
                let (b0, b1) = t.feedback_edge(a, k).unwrap();
                // (b0, a) is b0's (k−1)-finger, (a, b1) is a's (k−1)-finger.
                assert_eq!((b0 + step) % n, a);
                assert_eq!((a + step) % n, b1);
            }
        }
    }

    #[test]
    fn truncated_chord_has_fewer_waves() {
        let t = TruncatedChordTarget::new(256, 3);
        assert_eq!(t.waves(), 3);
        let full = ChordTarget::classic(256);
        assert!(t.target_edges().len() < full.target_edges().len());
    }
}
