//! End-to-end: arbitrary connected start → silent legal Avatar(Chord),
//! driven through the `Runtime::run_monitored` / `legality()` observer API.

use chord_scaffold::{legality, runtime, runtime_from_shape, runtime_is_legal, ChordTarget};
use ssim::monitor::{MonitorExt, RunVerdict};
use ssim::Config;

fn budget(n: u32, hosts: usize) -> u64 {
    let e = avatar_cbt::Schedule::new(n).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (6 * logn + 12)
}

#[test]
fn single_host_builds_chord_alone() {
    let t = ChordTarget::classic(16);
    let mut rt = runtime(t, &[5], vec![], Config::seeded(1));
    let out = rt.run_monitored(&mut legality(), budget(16, 1));
    assert_eq!(
        out.verdict,
        RunVerdict::Satisfied,
        "single host failed: {:?}",
        rt.topology().edges()
    );
}

#[test]
fn two_hosts_build_chord() {
    let t = ChordTarget::classic(16);
    let mut rt = runtime(t, &[3, 9], vec![(3, 9)], Config::seeded(2));
    let out = rt.run_monitored(&mut legality(), budget(16, 2));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "two hosts failed");
}

#[test]
fn eight_hosts_ring_build_chord() {
    let t = ChordTarget::classic(64);
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(t, &ids, edges, Config::seeded(3));
    let out = rt.run_monitored(&mut legality(), budget(64, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "eight hosts failed");
    assert!(runtime_is_legal(&rt));
}

#[test]
fn silent_after_stabilization() {
    let t = ChordTarget::classic(64);
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(t, &ids, edges, Config::seeded(4));
    let out = rt.run_monitored(&mut legality(), budget(64, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "stabilization");
    // Let in-flight traffic drain, then require absolute silence. The
    // combined goal legality ∧ silence is itself expressible as a monitor.
    let mut settled = legality().and(ssim::monitor::silence());
    let out = rt.run_monitored(&mut settled, 10);
    assert_eq!(out.verdict, RunVerdict::Satisfied, "must drain to silence");
    let before = rt.metrics().total_messages;
    for _ in 0..50 {
        rt.step();
        assert!(runtime_is_legal(&rt), "must remain legal while silent");
    }
    assert_eq!(
        rt.metrics().total_messages,
        before,
        "a legal Avatar(Chord) network must be silent"
    );
}

#[test]
fn sixteen_hosts_random_shape() {
    let t = ChordTarget::classic(128);
    let mut rt = runtime_from_shape(t, 16, ssim::init::Shape::Random, Config::seeded(5));
    let out = rt.run_monitored(&mut legality(), budget(128, 16));
    assert_eq!(
        out.verdict,
        RunVerdict::Satisfied,
        "16 hosts (random) failed"
    );
}

#[test]
fn wakes_and_rebuilds_after_perturbation() {
    let t = ChordTarget::classic(64);
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(t, &ids, edges, Config::seeded(6));
    let out = rt.run_monitored(&mut legality(), budget(64, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "initial stabilization");
    for _ in 0..5 {
        rt.step();
    }
    // Adversarially delete a required edge (the 1–9 successor edge): the
    // silent DONE network must notice via its neighbor cache and rebuild.
    // The network stays connected through the finger edges.
    assert!(rt.adversarial_remove_edge(1, 9));
    assert!(rt.topology().is_connected());
    assert!(!runtime_is_legal(&rt));
    let out = rt.run_monitored(&mut legality(), budget(64, 8));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "failed to recover");
}

#[test]
fn rounds_if_satisfied_gives_the_classic_option_shape() {
    let t = ChordTarget::classic(16);
    let mut rt = runtime(t, &[3, 9], vec![(3, 9)], Config::seeded(2));
    let rounds = rt
        .run_monitored(&mut legality(), budget(16, 2))
        .rounds_if_satisfied();
    assert!(rounds.is_some());
}

/// The full CBT → Chord build through the monitored batched driver is
/// byte-identical at every thread count: `runtime` arms the debug
/// shadow-step check, so the chunked parallel apply and hot-window batching
/// run under the quiescence auditor for the whole stabilization.
#[test]
fn stabilization_is_thread_and_batch_invariant() {
    let t = ChordTarget::classic(64);
    let ids: Vec<u32> = vec![1, 9, 17, 25, 33, 41, 49, 57];
    let run = |threads: usize, batch: u32| {
        let cfg = Config::seeded(22)
            .threads(threads)
            .always_parallel()
            .batch_rounds(batch);
        let mut rt = runtime(t, &ids, ssim::init::ring(&ids), cfg);
        let out = rt.run_monitored(&mut legality(), budget(64, ids.len()));
        assert_eq!(
            out.verdict,
            RunVerdict::Satisfied,
            "{threads} threads, batch {batch}"
        );
        assert!(runtime_is_legal(&rt));
        (
            out.rounds,
            serde_json::to_string(rt.metrics()).expect("metrics serialize"),
        )
    };
    let sequential = run(1, 1);
    for threads in [2usize, 4, 8] {
        for batch in [1u32, 16] {
            assert_eq!(
                sequential,
                run(threads, batch),
                "{threads} threads, batch {batch} diverged"
            );
        }
    }
}
