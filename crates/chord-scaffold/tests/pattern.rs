//! Contract tests for the network-scaffolding pattern (Section 6): any
//! `InductiveTarget` must satisfy the witness invariant the waves rely on,
//! and its waves must generate exactly its edge set.

use chord_scaffold::{ChordTarget, InductiveTarget, TruncatedChordTarget};
use std::collections::HashSet;

/// The generic contract every target must satisfy.
fn check_target_contract<T: InductiveTarget>(t: &T) {
    let n = t.n();
    // 1. Waves regenerate the target: ring (wave 0, if closing) plus every
    //    feedback edge equals target_edges.
    let mut built: HashSet<(u32, u32)> = HashSet::new();
    if t.closes_ring() {
        for i in 0..n {
            let j = (i + 1) % n;
            built.insert((i.min(j), i.max(j)));
        }
    }
    for k in 0..t.waves() {
        for a in 0..n {
            if let Some((x, y)) = t.feedback_edge(a, k) {
                assert_ne!(x, y, "{}: degenerate edge at a={a} k={k}", t.name());
                built.insert((x.min(y), x.max(y)));
            }
        }
    }
    let expect: HashSet<(u32, u32)> = t.target_edges().into_iter().collect();
    assert_eq!(
        built,
        expect,
        "{}: waves must generate the target",
        t.name()
    );

    // 2. Witness invariant: the endpoints of every wave-k feedback edge are
    //    adjacent to the witness in the graph built so far (ring + earlier
    //    waves) — otherwise the introduction would be illegal.
    let mut so_far: HashSet<(u32, u32)> = HashSet::new();
    if t.closes_ring() {
        for i in 0..n {
            let j = (i + 1) % n;
            so_far.insert((i.min(j), i.max(j)));
        }
    }
    for k in 0..t.waves() {
        for a in 0..n {
            if let Some((x, y)) = t.feedback_edge(a, k) {
                let adj = |u: u32, v: u32| u == v || so_far.contains(&(u.min(v), u.max(v)));
                assert!(
                    adj(a, x) && adj(a, y),
                    "{}: witness {a} not adjacent to ({x},{y}) at wave {k}",
                    t.name()
                );
            }
        }
        // Materialize this wave before the next.
        for a in 0..n {
            if let Some((x, y)) = t.feedback_edge(a, k) {
                so_far.insert((x.min(y), x.max(y)));
            }
        }
    }

    // 3. guest_neighbors is symmetric and matches the edge set.
    let mut from_neigh: HashSet<(u32, u32)> = HashSet::new();
    for a in 0..n {
        for b in t.guest_neighbors(a) {
            assert!(
                t.guest_neighbors(b).contains(&a),
                "{}: asymmetric neighborhood ({a},{b})",
                t.name()
            );
            from_neigh.insert((a.min(b), a.max(b)));
        }
    }
    assert_eq!(from_neigh, expect, "{}: neighborhoods vs edges", t.name());
}

#[test]
fn chord_classic_satisfies_contract() {
    for n in [8u32, 64, 256] {
        check_target_contract(&ChordTarget::classic(n));
    }
}

#[test]
fn chord_paper_satisfies_contract() {
    for n in [8u32, 64, 256] {
        check_target_contract(&ChordTarget::paper(n));
    }
}

#[test]
fn truncated_chord_satisfies_contract() {
    for (n, f) in [(64u32, 2u32), (64, 4), (256, 3)] {
        check_target_contract(&TruncatedChordTarget::new(n, f));
    }
}
