//! Stabilization under WAN network conditions ([`ssim::net`]): latency,
//! jitter, loss, and duplication exercise the scaffold's beacon-freshness
//! logic with *real* staleness, and partitions + churn force
//! re-stabilization after the network is spliced back together.

use chord_scaffold::{legality, runtime, runtime_is_legal, runtime_with_net, ChordTarget};
use ssim::monitor::RunVerdict;
use ssim::{Config, NetModel};

/// Convergence budget in rounds under delivery bound `delta` — the epoch
/// length scales with `Δ`, so the budget must too.
fn budget(n: u32, hosts: usize, delta: u64) -> u64 {
    let e = avatar_cbt::Schedule::new(n).with_delta(delta).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (6 * logn + 12)
}

fn ring_ids() -> Vec<u32> {
    vec![1, 9, 17, 25, 33, 41, 49, 57]
}

#[test]
fn eight_hosts_stabilize_under_lossy_wan() {
    let model = NetModel::wan();
    let delta = model.delivery_bound();
    let t = ChordTarget::classic(64);
    let ids = ring_ids();
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime_with_net(t, &ids, edges, Config::seeded(31), model);
    let out = rt.run_monitored(&mut legality(), 6 * budget(64, 8, delta));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "lossy WAN stalls");
    let net = rt.net_stats();
    assert!(net.conserved(), "{net:?}");
    assert!(net.dropped_loss > 0, "the WAN preset must actually drop");
}

#[test]
fn partition_with_churn_heals_back_to_legal() {
    let t = ChordTarget::classic(64);
    let ids = ring_ids();
    let edges = ssim::init::ring(&ids);
    let mut rt = runtime(t, &ids, edges, Config::seeded(32));
    let out = rt.run_monitored(&mut legality(), budget(64, 8, 1));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "ideal convergence");

    // Cut the converged overlay in half and churn both sides while the
    // cut is up: a partition alone never breaks legality (edges are node
    // state and stay untouched), but departures during the cut force the
    // survivors to rebuild across a boundary they cannot talk over.
    rt.partition([1u32, 9, 17, 25]);
    rt.leave(9);
    rt.leave(41);
    for _ in 0..20 {
        rt.step();
    }
    assert!(rt.partitioned());
    assert!(
        !runtime_is_legal(&rt),
        "churn during the cut must leave the overlay illegal"
    );
    rt.heal();
    let out = rt.run_monitored(&mut legality(), 4 * budget(64, 8, 1));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "no re-stabilization");
    let net = rt.net_stats();
    assert!(net.conserved(), "{net:?}");
    assert!(
        net.dropped_partition > 0,
        "the cut must have dropped traffic"
    );
}
