//! The `ssim::net` network-conditions subsystem over the full protocol
//! stack:
//!
//! * **Determinism** — WAN conditions with churn produce byte-identical
//!   metrics JSON across thread counts {1, 2, 4, 8} and, modulo the
//!   activity columns, across daemons (delayed arrivals must mark the
//!   recipient dirty on the *delivery* round, or the activity daemon
//!   would sleep through them).
//! * **Conservation** — `sent + duplicated == delivered + dropped +
//!   in_transit` holds after *every* round under loss, duplication,
//!   latency, churn, and partitions (property test).
//! * **Re-stabilization** — a partition plus churn during the cut heals
//!   back to the legal configuration for both protocol crates, under a
//!   latency model that keeps messages in transit across the cut.
//! * **Snapshots** — a snapshot taken with messages still in transit
//!   restores byte-identically and continues in lockstep.
//! * **Departure guard** — a message delayed across its recipient's
//!   leave → rejoin is purged, never delivered to the recycled slot.

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::scaffold;
use chord_scaffolding::sim::fault::Fault;
use chord_scaffolding::sim::monitor::RunVerdict;
use chord_scaffolding::sim::sched::{ActivityDriven, Scheduler, Synchronous};
use chord_scaffolding::sim::{init, Config, NetModel};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Convergence budget in rounds under per-hop delivery bound `delta`.
fn budget(n: u32, hosts: usize, delta: u64) -> u64 {
    let e = scaffold::Schedule::new(n).with_delta(delta).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (6 * logn + 12)
}

/// Eight hosts whose legal Avatar(Cbt(64)) topology stays connected when
/// 17 and 33 leave (9 and 41 are cut vertices there — see the protocol
/// crates' own net suites).
fn ring_ids() -> Vec<u32> {
    vec![1, 9, 17, 25, 33, 41, 49, 57]
}

/// An avatar-cbt run under the given model: converge, storm with churn,
/// re-converge — fingerprinted as the full serialized metrics.
fn cbt_net_run(
    seed: u64,
    model: NetModel,
    storm: usize,
    threads: usize,
    make: impl Fn() -> Box<dyn Scheduler>,
) -> String {
    let n = 64u32;
    let ids = ring_ids();
    let mut cfg = Config::seeded(seed).threads(threads).always_parallel();
    cfg.record_rounds = false;
    let mut rt = scaffold::runtime_with_net(n, &ids, init::ring(&ids), cfg, model);
    rt.set_scheduler(make());
    let delta = model.delivery_bound();
    rt.run(budget(n, ids.len(), delta));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57_0B_13);
    let gap = scaffold::Schedule::new(n).with_delta(delta).epoch_len();
    for _ in 0..storm {
        chord_scaffolding::sim::fault::inject(
            &mut rt,
            &Fault::Leave {
                id: None,
                keep_connected: true,
            },
            &mut rng,
        );
        rt.run(gap);
        let id = (0..n).find(|v| !rt.topology().contains(*v)).unwrap();
        chord_scaffolding::sim::fault::inject(&mut rt, &Fault::Join { id, attach: 2 }, &mut rng);
        rt.run(gap);
    }
    assert!(rt.net_stats().conserved(), "{:?}", rt.net_stats());
    serde_json::to_string(rt.metrics()).expect("metrics serialize")
}

/// Byte-identical metrics JSON across thread counts {1, 2, 4, 8} under
/// the WAN preset with a churn storm — the net layer's RNG draws happen
/// on the driver in canonical order, so the thread pool must not be able
/// to perturb loss/jitter/duplication decisions.
#[test]
fn wan_churn_runs_are_thread_deterministic() {
    let sequential = cbt_net_run(0xAB5E, NetModel::wan(), 2, 1, || Box::new(Synchronous));
    for threads in [2usize, 4, 8] {
        assert_eq!(
            sequential,
            cbt_net_run(0xAB5E, NetModel::wan(), 2, threads, || Box::new(
                Synchronous
            )),
            "{threads} threads diverged under WAN"
        );
    }
}

/// The activity-driven daemon reproduces the synchronous daemon under WAN
/// conditions (activity columns aside): a delayed delivery marks its
/// recipient dirty on the delivery round, so no arrival is slept through.
#[test]
fn wan_activity_daemon_matches_synchronous() {
    let blind = |json: &str| {
        chord_scaffolding::sim::metrics::blank_json_fields(
            json,
            &["total_activations", "active_nodes"],
        )
    };
    let sync = cbt_net_run(0xD1A7, NetModel::wan(), 1, 1, || Box::new(Synchronous));
    let act = cbt_net_run(0xD1A7, NetModel::wan(), 1, 1, || Box::new(ActivityDriven));
    assert_eq!(blind(&sync), blind(&act));
}

proptest! {
    /// Any sampled net model (latency × jitter × loss × duplication ×
    /// per-link skew), with or without churn, yields byte-identical
    /// metrics across thread counts.
    #[test]
    fn net_model_runs_are_thread_deterministic(
        seed in 0u64..1_000,
        delay in 0u64..3,
        jitter in 0u64..3,
        loss_i in 0usize..3,
        dup_i in 0usize..2,
        per_link_i in 0usize..2,
        storm in 0usize..2,
    ) {
        let model = NetModel {
            delay,
            jitter,
            loss: [0.0, 0.02, 0.1][loss_i],
            per_link: per_link_i == 1,
            dup: [0.0, 0.01][dup_i],
            bandwidth: 0,
        };
        let one = cbt_short_run(seed, model, storm, 1);
        let four = cbt_short_run(seed, model, storm, 4);
        prop_assert_eq!(one, four);
    }

    /// The conservation law holds after **every** round, not just at the
    /// end — under loss, duplication, latency, a mid-run leave, and a
    /// partition window (each drop class is accounted the round it
    /// happens).
    #[test]
    fn conservation_law_holds_every_round(
        seed in 0u64..1_000,
        delay in 0u64..3,
        jitter in 0u64..3,
        loss_i in 1usize..3,
        dup_i in 0usize..2,
    ) {
        let model = NetModel {
            delay,
            jitter,
            loss: [0.0, 0.05, 0.15][loss_i],
            per_link: false,
            dup: [0.005, 0.05][dup_i],
            bandwidth: 0,
        };
        let ids = ring_ids();
        let mut cfg = Config::seeded(seed);
        cfg.record_rounds = false;
        let mut rt = scaffold::runtime_with_net(64, &ids, init::ring(&ids), cfg, model);
        for round in 0..160u64 {
            match round {
                40 => {
                    rt.leave(17);
                }
                80 => rt.partition([1u32, 9, 25]),
                120 => rt.heal(),
                _ => {}
            }
            rt.step();
            let s = rt.net_stats();
            prop_assert!(s.conserved(), "round {}: {:?}", round, s);
        }
        let s = rt.net_stats();
        prop_assert!(s.dropped_loss > 0, "lossy model never dropped: {:?}", s);
        prop_assert!(s.duplicated > 0, "duplicating model never duplicated: {:?}", s);
    }
}

/// Short fixed-length run for the thread-determinism property (no
/// convergence requirement — only that executions agree bit-for-bit).
fn cbt_short_run(seed: u64, model: NetModel, storm: usize, threads: usize) -> String {
    let ids = ring_ids();
    let mut cfg = Config::seeded(seed).threads(threads).always_parallel();
    cfg.record_rounds = false;
    let mut rt = scaffold::runtime_with_net(64, &ids, init::ring(&ids), cfg, model);
    rt.run(120);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    for _ in 0..storm {
        chord_scaffolding::sim::fault::inject(
            &mut rt,
            &Fault::Leave {
                id: None,
                keep_connected: true,
            },
            &mut rng,
        );
        rt.run(60);
    }
    assert!(rt.net_stats().conserved(), "{:?}", rt.net_stats());
    serde_json::to_string(rt.metrics()).expect("metrics serialize")
}

/// Partition + churn during the cut, then heal: both protocol crates
/// re-stabilize to the legal configuration of the shrunk host set — under
/// a latency model, so the cut lands while messages are in transit and
/// the transit purge is exercised alongside the send-time drop.
#[test]
fn partition_heal_restabilizes_both_protocols_under_latency() {
    let model = NetModel {
        delay: 1,
        ..NetModel::ideal()
    };
    let delta = model.delivery_bound();
    let ids = ring_ids();

    // Avatar(CBT): 17 and 33 leave (the graph stays connected).
    let mut rt = scaffold::runtime_with_net(64, &ids, init::ring(&ids), Config::seeded(41), model);
    let out = rt.run_monitored(&mut scaffold::legality(), budget(64, 8, delta));
    assert_eq!(
        out.verdict,
        RunVerdict::Satisfied,
        "cbt initial convergence"
    );
    rt.partition([1u32, 9, 17, 25]);
    rt.leave(17);
    rt.leave(33);
    rt.run(20);
    assert!(rt.partitioned());
    rt.heal();
    let out = rt.run_monitored(&mut scaffold::legality(), 4 * budget(64, 8, delta));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "cbt re-stabilization");
    let s = rt.net_stats();
    assert!(s.conserved(), "{s:?}");
    assert!(s.dropped_partition > 0, "the cut must drop traffic: {s:?}");

    // Avatar(Chord): fingers keep the survivors connected even when the
    // scaffold cut vertices 9 and 41 leave.
    let t = ChordTarget::classic(64);
    let mut rt = chord::runtime_with_net(t, &ids, init::ring(&ids), Config::seeded(42), model);
    let out = rt.run_monitored(&mut chord::legality(), budget(64, 8, delta));
    assert_eq!(
        out.verdict,
        RunVerdict::Satisfied,
        "chord initial convergence"
    );
    rt.partition([1u32, 9, 17, 25]);
    rt.leave(9);
    rt.leave(41);
    rt.run(20);
    assert!(!chord::runtime_is_legal(&rt), "churn during the cut");
    rt.heal();
    let out = rt.run_monitored(&mut chord::legality(), 4 * budget(64, 8, delta));
    assert_eq!(out.verdict, RunVerdict::Satisfied, "chord re-stabilization");
    assert!(rt.net_stats().conserved(), "{:?}", rt.net_stats());
}

/// A snapshot taken while messages sit in the in-transit buffer restores
/// them — delivery rounds, payloads, endpoint guards — and the restored
/// run continues in lockstep with the original.
#[test]
fn snapshot_roundtrip_with_messages_in_transit() {
    let t = ChordTarget::classic(64);
    let ids = ring_ids();
    let mut cfg = Config::seeded(0x5AFE);
    cfg.record_rounds = false;
    let mut rt = chord::runtime_with_net(t, &ids, init::ring(&ids), cfg, NetModel::wan());
    // Step into the run until the delay queue is demonstrably non-empty.
    let mut waited = 0;
    while rt.in_transit() == 0 {
        rt.step();
        waited += 1;
        assert!(waited < 100, "WAN run never parked a message in transit");
    }
    rt.run(50);
    assert!(
        rt.in_transit() > 0,
        "snapshot point must have transit state"
    );

    let bytes = rt.save_snapshot();
    let mut restored = chord::restore_runtime(&bytes, cfg).expect("restore");
    assert_eq!(restored.in_transit(), rt.in_transit(), "transit survives");
    assert_eq!(
        restored.net_stats(),
        rt.net_stats(),
        "net accounting survives"
    );

    // Lockstep continuation: same rounds, byte-identical metrics and
    // identical topologies — the parked messages deliver identically.
    rt.run(500);
    restored.run(500);
    assert_eq!(rt.topology().edges(), restored.topology().edges());
    assert_eq!(
        serde_json::to_string(rt.metrics()).unwrap(),
        serde_json::to_string(restored.metrics()).unwrap(),
        "restored run diverged from the original"
    );
    assert!(rt.net_stats().conserved());
}

/// Regression: a message delayed across its recipient's leave → rejoin
/// must be purged with the departure, not delivered to the recycled slot.
/// Every host chats 1 byte per neighbor per round under a 5-round delay;
/// host 2 leaves with messages addressed to it in transit and immediately
/// rejoins the same id.
#[test]
fn delayed_message_across_leave_rejoin_is_purged() {
    use chord_scaffolding::sim::{Ctx, Program, Runtime};

    #[derive(Default)]
    struct Chatter {
        got: u64,
    }
    impl Program for Chatter {
        type Msg = u8;
        fn step(&mut self, ctx: &mut Ctx<'_, u8>) {
            self.got += ctx.inbox().len() as u64;
            for &v in &ctx.neighbors().to_vec() {
                ctx.send(v, 1);
            }
        }
    }

    let model = NetModel {
        delay: 5,
        ..NetModel::ideal()
    };
    let mut rt = Runtime::new(
        Config::seeded(9),
        [(1u32, Chatter::default()), (2u32, Chatter::default())],
        vec![(1, 2)],
    )
    .with_spawner(|_| Chatter::default())
    .with_net_model(model);

    // Rounds 0..2: sends 1 → 2 parked for delivery rounds 6 and 7.
    rt.run(2);
    assert!(rt.in_transit() > 0);
    rt.leave(2).expect("host 2 leaves");
    let s = rt.net_stats();
    assert!(
        s.dropped_departed >= 2,
        "transit to the leaver purged: {s:?}"
    );
    assert!(s.conserved(), "{s:?}");

    // Same id rejoins into the (recycled) slot before the old messages'
    // delivery rounds pass.
    rt.join_spawned(2, &[1]);
    // Through round 7: every pre-leave message would have arrived by now;
    // the earliest post-rejoin send (round 2) arrives at round 8.
    while rt.round() <= 7 {
        rt.step();
    }
    assert_eq!(
        rt.program(2).got,
        0,
        "a purged message reached the recycled slot"
    );

    // The rejoined channel works: post-rejoin traffic flows normally.
    rt.run(10);
    assert!(rt.program(2).got > 0, "rejoined host receives new traffic");
    assert!(rt.net_stats().conserved(), "{:?}", rt.net_stats());
}
