//! Snapshot/restore over the full protocol stack: a run split by a
//! checkpoint at an *arbitrary* round must continue **byte-identically**
//! with the uninterrupted run — same serialized metrics, at any thread
//! count and under any equivalence-claiming scheduler, through churn and
//! live traffic — and a tampered snapshot must be rejected loudly rather
//! than ever loading garbage.

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::scaffold;
use chord_scaffolding::sim::{
    init::Shape, sched, Config, OpenLoop, Program, SnapshotError, WorkloadConfig,
};
use proptest::prelude::*;

type ChordRt = chord_scaffolding::sim::Runtime<chord::ScaffoldProgram>;

fn metrics_json<P: Program>(rt: &chord_scaffolding::sim::Runtime<P>) -> String {
    serde_json::to_string(rt.metrics()).expect("metrics serialize")
}

/// Advance `rounds` rounds, optionally injecting a deterministic churn
/// storm keyed on the **absolute** round counter — so driving the run in
/// one piece or as head + restored tail produces the same event sequence
/// regardless of where the snapshot split it.
fn drive(rt: &mut ChordRt, rounds: u64, churn: bool) {
    for _ in 0..rounds {
        let r = rt.round();
        if churn && r % 19 == 11 && rt.ids().len() > 4 {
            let victim = rt.ids()[r as usize % rt.ids().len()];
            rt.leave(victim);
        }
        if churn && r % 31 == 17 {
            if let Some(fresh) = (0..64).find(|&v| !rt.topology().contains(v)) {
                let contacts: Vec<u32> = rt.ids().iter().take(2).copied().collect();
                rt.join_spawned(fresh, &contacts);
            }
        }
        rt.step();
    }
}

proptest! {
    /// The tentpole contract: snapshot at any round, restore at any thread
    /// count under either daemon, continue — the metrics JSON equals the
    /// uninterrupted run byte for byte, churn storms included.
    #[test]
    fn restore_continues_byte_identically(
        seed in 0u64..1_000_000,
        split in 1u64..160,
        churn_bit in 0u8..2,
        sched_bit in 0u8..2,
        thread_ix in 0usize..4,
    ) {
        let total = 160u64;
        let churn = churn_bit == 1;
        let spec = if sched_bit == 1 { "activity" } else { "sync" };
        let threads = [1usize, 2, 4, 8][thread_ix];
        let build = || {
            let target = ChordTarget::classic(64);
            let mut cfg = Config::seeded(seed);
            cfg.record_rounds = false;
            chord::runtime_from_shape(target, 8, Shape::Random, cfg)
        };

        let mut full = build();
        full.set_scheduler(sched::from_spec(spec, seed).expect("known spec"));
        drive(&mut full, total, churn);
        let expect = metrics_json(&full);

        let mut head = build();
        head.set_scheduler(sched::from_spec(spec, seed).expect("known spec"));
        drive(&mut head, split, churn);
        let bytes = head.save_snapshot();

        // seed / strict / record_rounds are pinned from the payload — pass
        // a deliberately wrong seed to prove it — while the caller picks
        // the execution strategy (thread count). `always_parallel` pins the
        // pool path on the tail, so a sequential head must continue
        // byte-identically on the chunked parallel apply.
        let tail_cfg = Config::seeded(!seed).threads(threads).always_parallel();
        let mut tail = chord::restore_runtime(&bytes, tail_cfg).expect("snapshot restores");
        prop_assert_eq!(tail.config().seed, seed, "restore pins the snapshot's seed");
        tail.set_scheduler(sched::from_spec(spec, seed).expect("known spec"));
        drive(&mut tail, total - split, churn);
        prop_assert_eq!(expect, metrics_json(&tail));
    }
}

/// `save ∘ restore ∘ save` is the identity on the bytes for the full
/// protocol stack: the compacted protocol states (the CBT view and
/// scratch's sorted inline maps, the scaffold's phase-view tables, the
/// paged inboxes, the adjacency arena) must re-encode to exactly the
/// bytes they loaded from — at a stale mid-stabilization round, mid-merge,
/// and near convergence.
#[test]
fn protocol_snapshot_save_load_save_is_byte_identity() {
    let target = ChordTarget::classic(64);
    let mut cfg = Config::seeded(23);
    cfg.record_rounds = false;
    let mut rt = chord::runtime_from_shape(target, 8, Shape::Random, cfg);
    for rounds in [13u64, 27, 50] {
        rt.run(rounds);
        let bytes = rt.save_snapshot();
        let back = chord::restore_runtime(&bytes, cfg).expect("snapshot restores");
        assert_eq!(
            back.save_snapshot(),
            bytes,
            "re-encode diverged at round {}",
            rt.round()
        );
    }
}

/// Every way a snapshot can be damaged maps to a distinct loud error;
/// none of them ever yields a runtime.
#[test]
fn corrupted_snapshots_are_rejected() {
    let target = ChordTarget::classic(64);
    let mut cfg = Config::seeded(7);
    cfg.record_rounds = false;
    let mut rt = chord::runtime_from_shape(target, 6, Shape::Random, cfg);
    rt.run(40);
    let good = rt.save_snapshot();
    assert!(chord::restore_runtime(&good, cfg).is_ok());

    let restore_err = |bytes: &[u8]| match chord::restore_runtime(bytes, cfg) {
        Err(e) => e,
        Ok(_) => panic!("a damaged snapshot must never restore"),
    };

    let err = restore_err(&good[..good.len() - 3]);
    assert!(
        matches!(err, SnapshotError::Truncated),
        "truncated file: {err:?}"
    );

    let mut flipped = good.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let err = restore_err(&flipped);
    assert!(
        matches!(err, SnapshotError::HashMismatch { .. }),
        "flipped payload byte: {err:?}"
    );

    let mut vers = good.clone();
    vers[8] = 0xEE; // the version u32 sits right after the 8-byte magic
    let err = restore_err(&vers);
    assert!(
        matches!(err, SnapshotError::Version { found: 0xEE, .. }),
        "future version: {err:?}"
    );

    let mut magic = good.clone();
    magic[0] ^= 0xFF;
    let err = restore_err(&magic);
    assert!(
        matches!(err, SnapshotError::BadMagic),
        "wrong magic: {err:?}"
    );
}

/// A converged, legal Avatar(Chord) checkpoint restores legal, stays
/// silent, and continues identically at every thread count and under both
/// daemons — the property the E14 scale sweep and the bench fixture cache
/// stand on.
#[test]
fn converged_legal_snapshot_restores_legal_and_identical() {
    let target = ChordTarget::classic(64);
    let mut cfg = Config::seeded(0xC0FFEE);
    cfg.record_rounds = false;
    let mut rt = chord::runtime_from_shape(target, 8, Shape::Random, cfg);
    let out = rt.run_monitored(&mut chord::legality(), 60_000);
    assert!(
        out.rounds_if_satisfied().is_some(),
        "overlay converges within budget: {out:?}"
    );
    let bytes = rt.save_snapshot();
    rt.run(64);
    let expect = metrics_json(&rt);
    let expect_blind = chord_scaffolding::sim::metrics::blank_json_fields(
        &expect,
        &["total_activations", "active_nodes"],
    );

    for threads in [1usize, 2, 4, 8] {
        for spec in ["sync", "activity"] {
            let mut r2 = chord::restore_runtime(&bytes, cfg.threads(threads).always_parallel())
                .expect("converged snapshot restores");
            assert!(
                chord::runtime_is_legal(&r2),
                "restored state is still legal ({spec}, {threads} threads)"
            );
            r2.set_scheduler(sched::from_spec(spec, cfg.seed).expect("known spec"));
            let silent_before = r2.metrics().total_messages;
            r2.run(64);
            assert_eq!(
                r2.metrics().total_messages,
                silent_before,
                "a legal overlay stays silent after restore ({spec})"
            );
            let got = metrics_json(&r2);
            if spec == "sync" {
                assert_eq!(
                    expect, got,
                    "sync continuation diverged at {threads} threads"
                );
            } else {
                // Activation counts legitimately differ between daemons;
                // everything else must not.
                let got_blind = chord_scaffolding::sim::metrics::blank_json_fields(
                    &got,
                    &["total_activations", "active_nodes"],
                );
                assert_eq!(
                    expect_blind, got_blind,
                    "activity continuation diverged at {threads} threads"
                );
            }
        }
    }
}

/// The standalone Avatar(CBT) network goes fully dormant via the quiesce
/// wave; a snapshot taken while dormant must round-trip that state — the
/// restored network is still quiescent, stays silent under the activity
/// daemon, and continues identically.
#[test]
fn dormant_cbt_snapshot_restores_dormant() {
    let n = 64u32;
    let mut cfg = Config::seeded(0xCB7);
    cfg.record_rounds = false;
    let mut rt = scaffold::runtime_from_shape(n, 8, Shape::Random, cfg);
    let out = rt.run_monitored(&mut scaffold::legality(), 60_000);
    assert!(
        out.rounds_if_satisfied().is_some(),
        "CBT converges within budget: {out:?}"
    );
    // Let the quiesce wave drain until every host reports dormant.
    let epoch = scaffold::Schedule::new(n).epoch_len();
    let mut waited = 0u64;
    while !rt.programs().all(|(_, p)| p.is_quiescent()) {
        rt.run(epoch);
        waited += epoch;
        assert!(waited < 64 * epoch, "network failed to go dormant");
    }
    let bytes = rt.save_snapshot();
    rt.run(128);
    let expect_blind = chord_scaffolding::sim::metrics::blank_json_fields(
        &metrics_json(&rt),
        &["total_activations", "active_nodes"],
    );

    let mut r2 = scaffold::restore_runtime(&bytes, cfg).expect("dormant snapshot restores");
    assert!(
        r2.programs().all(|(_, p)| p.is_quiescent()),
        "dormancy survives the roundtrip"
    );
    r2.set_scheduler(sched::from_spec("activity", cfg.seed).expect("known spec"));
    let silent_before = r2.metrics().total_messages;
    r2.run(128);
    assert_eq!(
        r2.metrics().total_messages,
        silent_before,
        "the dormant network costs nothing under the activity daemon"
    );
    let got_blind = chord_scaffolding::sim::metrics::blank_json_fields(
        &metrics_json(&r2),
        &["total_activations", "active_nodes"],
    );
    assert_eq!(expect_blind, got_blind);
}

/// A snapshot taken mid-traffic carries the generator state, workload RNG,
/// in-flight queues, and the saved `WorkloadConfig`. Restoring stashes
/// them until `attach_workload` re-supplies a same-typed generator; the
/// resumed run then matches the uninterrupted one byte for byte.
#[test]
fn midtraffic_snapshot_resumes_after_reattach() {
    let build = || {
        let target = ChordTarget::classic(64);
        let mut cfg = Config::seeded(0x7AFF1C);
        cfg.record_rounds = false;
        let mut rt = chord::runtime_from_shape(target, 8, Shape::Random, cfg);
        rt.attach_workload(OpenLoop::new(2.0, 64), WorkloadConfig::default());
        rt
    };

    let mut full = build();
    full.run(300);
    let expect = metrics_json(&full);

    let mut head = build();
    head.run(120);
    let bytes = head.save_snapshot();

    let cfg = Config::seeded(0x7AFF1C);
    let mut tail = chord::restore_runtime(&bytes, cfg).expect("mid-traffic snapshot restores");
    assert!(
        tail.pending_workload(),
        "restored runtime stashes the saved traffic until re-attach"
    );
    // The snapshot carries only the generator's *mutable state*; the caller
    // must re-supply the same constructor parameters (rate, key space).
    // The WorkloadConfig argument is ignored on resume — the saved one wins.
    tail.attach_workload(OpenLoop::new(2.0, 64), WorkloadConfig::default());
    assert!(!tail.pending_workload());
    tail.run(180);
    assert_eq!(expect, metrics_json(&tail));
}
