//! Dynamic-membership properties: re-stabilization under scripted churn,
//! determinism of scenario runs, and runtime well-formedness when leaves
//! disconnect the network (cut vertices).

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::fault::Fault;
use chord_scaffolding::sim::scenario::Scenario;
use chord_scaffolding::sim::{init::Shape, Config};

fn budget(n: u32, hosts: usize) -> u64 {
    let e = chord_scaffolding::scaffold::Schedule::new(n).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (8 * logn + 16)
}

/// (a) A stabilized Avatar(Chord) re-stabilizes to the legal configuration
/// of the *changed* host set after scripted joins, a leave, and a crash —
/// across several seeds.
#[test]
fn stabilized_chord_restabilizes_after_scripted_churn() {
    let n = 64u32;
    let hosts = 8usize;
    let target = ChordTarget::classic(n);
    for seed in 0..3u64 {
        let mut rt =
            chord::runtime_from_shape(target, hosts, Shape::Random, Config::seeded(900 + seed));
        rt.run_monitored(&mut chord::legality(), budget(n, hosts));
        assert!(chord::runtime_is_legal(&rt), "seed {seed}: initial");

        let taken: std::collections::HashSet<u32> = rt.ids().iter().copied().collect();
        let mut fresh = (0..n).filter(|v| !taken.contains(v));
        let (a, b) = (fresh.next().unwrap(), fresh.next().unwrap());
        let gap = chord_scaffolding::scaffold::Schedule::new(n).epoch_len();

        let scenario = Scenario::new(format!("churn-{seed}"))
            .seeded(seed)
            .fault(0, Fault::Join { id: a, attach: 2 })
            .fault(
                gap,
                Fault::Leave {
                    id: None,
                    keep_connected: true,
                },
            )
            .fault(2 * gap, Fault::Join { id: b, attach: 1 })
            .fault(
                3 * gap,
                Fault::Crash {
                    id: None,
                    keep_connected: true,
                },
            );
        let report = scenario.run(
            &mut rt,
            &mut chord::legality(),
            4 * gap + 2 * budget(n, hosts),
        );
        assert!(
            report.converged(),
            "seed {seed}: {:?} after {} rounds ({:?})",
            report.verdict,
            report.rounds,
            report.reason
        );
        assert_eq!(report.nodes_final, hosts, "+2 joins, -1 leave, -1 crash");
        assert_eq!((report.joins, report.leaves, report.crashes), (2, 1, 1));
        assert!(
            chord::runtime_is_legal(&rt),
            "seed {seed}: legality of the new host set"
        );
    }
}

/// (b) Scenario runs are deterministic: identical runtimes + identical
/// schedules produce bit-identical reports and final topologies.
#[test]
fn scenario_runs_are_deterministic() {
    let n = 64u32;
    let hosts = 8usize;
    let target = ChordTarget::classic(n);
    let gap = chord_scaffolding::scaffold::Schedule::new(n).epoch_len();
    let run = || {
        let mut rt =
            chord::runtime_from_shape(target, hosts, Shape::Lollipop, Config::seeded(0xFACE));
        rt.run_monitored(&mut chord::legality(), budget(n, hosts));
        let scenario = Scenario::new("determinism")
            .seeded(31337)
            .fault(0, Fault::Rewire { count: 2 })
            .fault(
                gap / 2,
                Fault::Leave {
                    id: None,
                    keep_connected: true,
                },
            )
            .fault(gap, Fault::Join { id: 2, attach: 2 })
            .fault(
                2 * gap,
                Fault::Crash {
                    id: None,
                    keep_connected: true,
                },
            );
        let report = scenario.run(&mut rt, &mut chord::legality(), 3 * gap + budget(n, hosts));
        (
            report.to_json(),
            rt.topology().edges(),
            rt.metrics().total_messages,
            rt.ids().to_vec(),
        )
    };
    assert_eq!(run(), run());
}

/// (c) Leaving a cut vertex disconnects the network but keeps the runtime
/// well-formed: invariants hold, the survivors keep stepping, and hosts can
/// re-join and re-attach across the fragments.
#[test]
fn leave_of_cut_vertex_keeps_runtime_well_formed() {
    use chord_scaffolding::sim::{Ctx, Program, Runtime};

    /// Chatters with all neighbors every round.
    struct Chatter;
    impl Program for Chatter {
        type Msg = u8;
        fn step(&mut self, ctx: &mut Ctx<'_, u8>) {
            for &v in &ctx.neighbors().to_vec() {
                ctx.send(v, 1);
            }
        }
    }

    // A line 0-1-…-9: every interior node is a cut vertex.
    let mut rt = Runtime::new(
        Config::seeded(5),
        (0..10u32).map(|i| (i, Chatter)),
        (0..9u32).map(|i| (i, i + 1)),
    )
    .with_spawner(|_| Chatter);
    rt.run(3);

    assert!(rt.leave(5).is_some(), "interior node leaves");
    assert!(!rt.topology().is_connected(), "5 was a cut vertex");
    assert!(rt.topology().check_invariants());
    assert_eq!(rt.ids().len(), 9);

    // Both fragments keep executing rounds (no panics, sends validated
    // against the shrunk adjacency), under the strict default config.
    rt.run(5);
    assert!(rt.topology().check_invariants());

    // A re-join bridging the fragments reconnects the network.
    rt.join_spawned(5, &[4, 6]);
    assert!(rt.topology().is_connected(), "rejoin bridges the cut");
    rt.run(5);
    assert!(rt.topology().check_invariants());
    assert_eq!(rt.metrics().leaves, 1);
    assert_eq!(rt.metrics().joins, 1);
}

/// (c'） Property form over random trees: removing any interior node of a
/// random spanning tree leaves a well-formed, steppable runtime.
#[test]
fn random_tree_cut_vertex_leaves_are_well_formed() {
    use chord_scaffolding::sim::{init, Ctx, Program, Runtime};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    struct Quiet;
    impl Program for Quiet {
        type Msg = ();
        fn step(&mut self, ctx: &mut Ctx<'_, ()>) {
            // Talk to the first neighbor only (exercises send validation).
            if let Some(&v) = ctx.neighbors().first() {
                ctx.send(v, ());
            }
        }
    }

    for seed in 0..25u64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let ids = init::random_ids(12, 64, &mut rng);
        let edges = init::random_connected(&ids, 0, &mut rng); // spanning tree
        let mut rt = Runtime::new(Config::seeded(seed), ids.iter().map(|&v| (v, Quiet)), edges);
        rt.run(2);
        // Leave the highest-degree node: in a tree with n ≥ 3 it is
        // guaranteed to be interior, i.e. a cut vertex.
        let hub = *ids
            .iter()
            .max_by_key(|&&v| rt.topology().degree(v))
            .unwrap();
        assert!(rt.topology().degree(hub) >= 2, "seed {seed}: hub interior");
        rt.leave(hub).unwrap();
        assert!(!rt.topology().is_connected(), "seed {seed}: tree split");
        assert!(rt.topology().check_invariants(), "seed {seed}");
        rt.run(4);
        assert!(rt.topology().check_invariants(), "seed {seed}");
        assert_eq!(rt.ids().len(), 11, "seed {seed}");
        assert!(rt.is_silent() || rt.metrics().total_messages > 0);
    }
}
