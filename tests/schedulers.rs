//! Scheduler-subsystem properties over the full protocol stack:
//!
//! * **Equivalence** — for well-behaved programs (avatar-cbt with its
//!   quiesce wave, chord-scaffold with its settled DONE phase), the
//!   activity-driven daemon reproduces the synchronous daemon's execution
//!   *exactly* — identical final topologies, identical message totals,
//!   identical legality verdicts — on clean runs and through random churn
//!   storms. Debug builds run the shadow-step check throughout (armed by
//!   the protocol runtime builders), so any skipped non-no-op step panics.
//! * **Determinism** — for every scheduler, identical `(seed, scheduler)`
//!   runs produce byte-identical metrics JSON across thread counts
//!   {1, 2, 4}.
//! * **Savings** — after convergence, the activity-driven daemon performs
//!   (almost) no activations while the synchronous daemon keeps paying
//!   `n` per round.

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::scaffold;
use chord_scaffolding::sim::fault::Fault;
use chord_scaffolding::sim::sched::{ActivityDriven, RandomSubset, Scheduler, Synchronous};
use chord_scaffolding::sim::{init::Shape, Config};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn budget(n: u32, hosts: usize) -> u64 {
    let e = scaffold::Schedule::new(n).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (8 * logn + 16)
}

/// Drive an avatar-cbt network to legality (and beyond) under the given
/// scheduler, sprinkling `storm` churn events from a seeded RNG, and
/// fingerprint the outcome.
fn cbt_run(
    seed: u64,
    hosts: usize,
    storm: usize,
    threads: usize,
    make: impl Fn() -> Box<dyn Scheduler>,
) -> (bool, Vec<(u32, u32)>, u64, String) {
    let n = 64u32;
    let cfg = Config::seeded(seed).threads(threads);
    let mut rt = scaffold::runtime_from_shape(n, hosts, Shape::Random, cfg);
    rt.set_scheduler(make());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x57_0B_13);
    let mut fresh = n; // ids ≥ n would be invalid hosts; draw below n instead
    let gap = scaffold::Schedule::new(n).epoch_len();
    // Converge once, then interleave churn events with re-convergence.
    let out = rt.run_monitored(&mut scaffold::legality(), budget(n, hosts));
    let converged = out.rounds_if_satisfied().is_some();
    for _ in 0..storm {
        let fault = match rng.gen_range(0..4u32) {
            0 => {
                // A fresh host id not currently a member.
                let id = loop {
                    fresh = (fresh + 7) % n;
                    if !rt.topology().contains(fresh) {
                        break fresh;
                    }
                };
                Fault::Join { id, attach: 2 }
            }
            1 => Fault::Leave {
                id: None,
                keep_connected: true,
            },
            2 => Fault::AddRandomEdges { count: 1 },
            _ => Fault::Rewire { count: 1 },
        };
        chord_scaffolding::sim::fault::inject(&mut rt, &fault, &mut rng);
        rt.run(gap);
    }
    let healed = rt
        .run_monitored(&mut scaffold::legality(), 2 * budget(n, hosts))
        .rounds_if_satisfied()
        .is_some();
    (
        converged && healed,
        rt.topology().edges(),
        rt.metrics().total_messages,
        serde_json::to_string(rt.metrics()).expect("metrics serialize"),
    )
}

/// Same harness for the full Avatar(Chord) stack.
fn chord_run(
    seed: u64,
    hosts: usize,
    churn: bool,
    threads: usize,
    make: impl Fn() -> Box<dyn Scheduler>,
) -> (bool, Vec<(u32, u32)>, u64, String) {
    let n = 64u32;
    let target = ChordTarget::classic(n);
    let cfg = Config::seeded(seed).threads(threads);
    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Random, cfg);
    rt.set_scheduler(make());
    let out = rt.run_monitored(&mut chord::legality(), budget(n, hosts));
    let converged = out.rounds_if_satisfied().is_some();
    if churn {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xC4_42);
        let gap = scaffold::Schedule::new(n).epoch_len();
        chord_scaffolding::sim::fault::inject(
            &mut rt,
            &Fault::Leave {
                id: None,
                keep_connected: true,
            },
            &mut rng,
        );
        rt.run(gap);
        let id = (0..n).find(|v| !rt.topology().contains(*v)).unwrap();
        chord_scaffolding::sim::fault::inject(&mut rt, &Fault::Join { id, attach: 2 }, &mut rng);
    }
    let healed = rt
        .run_monitored(&mut chord::legality(), 2 * budget(n, hosts))
        .rounds_if_satisfied()
        .is_some();
    (
        converged && healed,
        rt.topology().edges(),
        rt.metrics().total_messages,
        serde_json::to_string(rt.metrics()).expect("metrics serialize"),
    )
}

/// Strip the per-scheduler activity columns from a metrics fingerprint so
/// executions can be compared across *daemons* (activations legitimately
/// differ; everything else must not).
fn activity_blind(metrics_json: &str) -> String {
    chord_scaffolding::sim::metrics::blank_json_fields(
        metrics_json,
        &["total_activations", "active_nodes"],
    )
}

/// ActivityDriven reproduces Synchronous *exactly* for avatar-cbt — same
/// final topology, same legality verdict, same message totals, even the
/// same per-round metric rows (modulo the activation columns) — across
/// several seeds and through churn storms, with the debug shadow check
/// auditing every skip.
#[test]
fn cbt_activity_driven_is_execution_equivalent_to_synchronous() {
    for seed in [3u64, 11, 42] {
        let sync = cbt_run(seed, 8, 3, 1, || Box::new(Synchronous));
        let act = cbt_run(seed, 8, 3, 1, || Box::new(ActivityDriven));
        assert!(sync.0, "seed {seed}: synchronous run must converge & heal");
        assert_eq!(sync.0, act.0, "seed {seed}: legality verdicts");
        assert_eq!(sync.1, act.1, "seed {seed}: final topologies");
        assert_eq!(sync.2, act.2, "seed {seed}: message totals");
        assert_eq!(
            activity_blind(&sync.3),
            activity_blind(&act.3),
            "seed {seed}: full metric traces (activity columns aside)"
        );
    }
}

#[test]
fn chord_activity_driven_is_execution_equivalent_to_synchronous() {
    for seed in [5u64, 23] {
        let sync = chord_run(seed, 8, true, 1, || Box::new(Synchronous));
        let act = chord_run(seed, 8, true, 1, || Box::new(ActivityDriven));
        assert!(sync.0, "seed {seed}: synchronous run must converge & heal");
        assert_eq!(sync.0, act.0, "seed {seed}: legality verdicts");
        assert_eq!(sync.1, act.1, "seed {seed}: final topologies");
        assert_eq!(
            activity_blind(&sync.3),
            activity_blind(&act.3),
            "seed {seed}: full metric traces (activity columns aside)"
        );
    }
}

/// Byte-identical metrics JSON for the same (seed, scheduler) across
/// thread counts {1, 2, 4} — for every scheduler, over a churny avatar-cbt
/// run.
#[test]
fn scheduler_runs_are_thread_count_invariant() {
    type Make = fn() -> Box<dyn Scheduler>;
    let schedulers: [(&str, Make); 4] = [
        ("sync", || Box::new(Synchronous)),
        ("activity", || Box::new(ActivityDriven)),
        ("random", || Box::new(RandomSubset::new(0.5, 1234))),
        ("rr", || {
            Box::new(chord_scaffolding::sim::sched::Adversarial::round_robin(3))
        }),
    ];
    for (name, make) in schedulers {
        let baseline = cbt_run(77, 6, 2, 1, make);
        for threads in [2usize, 4] {
            let parallel = cbt_run(77, 6, 2, threads, make);
            assert_eq!(
                baseline.3, parallel.3,
                "{name}: {threads}-thread run diverged from sequential"
            );
        }
    }
}

/// The headline saving: after an avatar-cbt network converges and the
/// quiesce wave drains, activity-driven rounds are (nearly) free while
/// synchronous rounds keep paying `hosts` activations each.
#[test]
fn activity_driven_idles_after_cbt_convergence() {
    let n = 64u32;
    let hosts = 12usize;
    let post = 400u64;
    let run = |make: Box<dyn Scheduler>| {
        let mut rt = scaffold::runtime_from_shape(n, hosts, Shape::Random, Config::seeded(9));
        rt.set_scheduler(make);
        let out = rt.run_monitored(&mut scaffold::legality(), budget(n, hosts));
        assert!(out.rounds_if_satisfied().is_some(), "must converge");
        let at_legal = rt.metrics().total_activations;
        rt.run(post);
        rt.metrics().total_activations - at_legal
    };
    let sync_tail = run(Box::new(Synchronous));
    let act_tail = run(Box::new(ActivityDriven));
    assert_eq!(sync_tail, hosts as u64 * post);
    assert!(
        act_tail * 5 <= sync_tail,
        "post-convergence: expected ≥5× fewer activations, got {act_tail} vs {sync_tail}"
    );
}

proptest! {
    /// Property form over random seeds and sizes: ActivityDriven and
    /// Synchronous reach identical final topologies and legality verdicts
    /// on random churn storms of the scaffold protocol. (The vendored
    /// proptest harness runs a fixed fan of seeded cases; the storm,
    /// churn-count, and host-count all derive from the case RNG.)
    #[test]
    fn cbt_churn_storms_preserve_scheduler_equivalence(
        seed in 0u64..100_000,
        hosts in 4usize..7,
    ) {
        let sync = cbt_run(seed, hosts, 1, 1, || Box::new(Synchronous));
        let act = cbt_run(seed, hosts, 1, 1, || Box::new(ActivityDriven));
        prop_assert_eq!(sync.0, act.0, "legality verdicts (seed {})", seed);
        prop_assert_eq!(sync.1, act.1, "final topologies (seed {})", seed);
        prop_assert_eq!(sync.2, act.2, "message totals (seed {})", seed);
    }

    /// Same property for the full Avatar(Chord) stack (leave + join churn).
    #[test]
    fn chord_churn_storms_preserve_scheduler_equivalence(seed in 0u64..100_000) {
        let sync = chord_run(seed, 6, true, 1, || Box::new(Synchronous));
        let act = chord_run(seed, 6, true, 1, || Box::new(ActivityDriven));
        prop_assert_eq!(sync.0, act.0, "legality verdicts (seed {})", seed);
        prop_assert_eq!(sync.1, act.1, "final topologies (seed {})", seed);
    }
}
