//! Integration tests for the adversary gauntlet on the real protocol stack:
//! structured attacks against a converged Avatar(Chord) overlay, the
//! rule-based detector suite, and checkpoint-rollback recovery.
//!
//! The engine promises byte-identical execution at any thread count and
//! batch window; these tests extend that promise over the whole
//! detect/classify/rollback path (which runs on the driving thread between
//! rounds, so it inherits determinism — but only if nothing in it secretly
//! iterates a hash map or reads a clock).

use chord_scaffold::{ChordTarget, ScaffoldProgram};
use proptest::prelude::*;
use scaffold_bench::{budget, legal_chord_runtime_cfg};
use ssim::monitor::{BeaconStaleness, DegreeAnomaly, SilenceAnomaly, ViewDivergence};
use ssim::{
    quarantine, release, run_gauntlet, Adversary, Checkpoint, Config, DetectorSuite,
    GauntletOutcome, NodeId, OpenLoop, Recovery, RunVerdict, Runtime, WorkloadConfig,
};

const N: u32 = 64;
const HOSTS: usize = 8;
const WARM: u64 = 16;
const INJECT: u64 = 2;

/// The converged-overlay fixture warmed forward with its views re-stamped
/// at the warmed round (receipt rounds are unsigned; views installed at
/// round 0 leave aging attacks nowhere to go).
fn warmed_fixture(seed: u64, cfg: Config) -> Runtime<ScaffoldProgram<ChordTarget>> {
    let mut rt = legal_chord_runtime_cfg(N, HOSTS, cfg);
    rt.run(WARM);
    let now = rt.round();
    let ids: Vec<NodeId> = rt.ids().to_vec();
    for &v in &ids {
        rt.corrupt_node(v, |p: &mut ScaffoldProgram<ChordTarget>| {
            p.core.cbt.view.restamp(now);
        });
    }
    let _ = seed;
    rt
}

fn suite() -> DetectorSuite<ScaffoldProgram<ChordTarget>> {
    DetectorSuite::new()
        .with(BeaconStaleness::new())
        .with(ViewDivergence::new())
        .with(DegreeAnomaly::new())
        .with(SilenceAnomaly::new())
}

/// One gauntlet run against the real protocol; returns the outcome and the
/// runtime metrics fingerprint (request accounting included).
fn drive(
    seed: u64,
    cfg: Config,
    sched: &str,
    adv: &Adversary,
    rollback: bool,
    max_rounds: u64,
) -> (GauntletOutcome, String) {
    let mut rt = warmed_fixture(seed, cfg);
    rt.set_scheduler(ssim::sched::from_spec(sched, seed).expect("known spec"));
    let ck = Checkpoint::capture(&rt);
    rt.attach_workload(OpenLoop::new(2.0, N), WorkloadConfig::default());
    let scenario = adv.compile(rt.ids(), INJECT, seed);
    let mut suite = suite();
    let recovery = if rollback {
        Recovery::Rollback(&ck)
    } else {
        Recovery::Restabilize
    };
    let out = run_gauntlet(
        &mut rt,
        &scenario,
        &mut suite,
        recovery,
        &mut chord_scaffold::legality(),
        max_rounds,
    );
    let metrics = serde_json::to_string(rt.metrics()).expect("metrics serialize");
    (out, metrics)
}

fn fingerprint(out: &GauntletOutcome, metrics: &str) -> String {
    format!(
        "{}|{metrics}",
        serde_json::to_string(out).expect("outcome JSON")
    )
}

/// Tentpole determinism: the full attack/detect/rollback/re-legalize cycle
/// is byte-identical across thread counts and batch windows, per daemon.
#[test]
fn gauntlet_runs_identically_across_threads_and_batch_windows() {
    let adv = Adversary::LyingBeacons { victims: 2 };
    let max = 2 * budget(N, HOSTS) + 64;
    for sched in ["sync", "activity"] {
        let mut reference: Option<String> = None;
        for (threads, batch) in [(1usize, 16u32), (2, 1), (4, 16), (8, 4)] {
            let mut cfg = Config::seeded(33).threads(threads);
            cfg.batch_rounds = batch;
            cfg.record_rounds = false;
            let (out, metrics) = drive(33, cfg, sched, &adv, true, max);
            assert_eq!(out.verdict, RunVerdict::Satisfied);
            let fp = fingerprint(&out, &metrics);
            match &reference {
                None => reference = Some(fp),
                Some(r) => assert_eq!(
                    r, &fp,
                    "gauntlet diverged at threads={threads} batch={batch} sched={sched}"
                ),
            }
        }
    }
}

/// The PR's measured claim on the real protocol: rolling implicated hosts
/// back to the pre-attack checkpoint re-legalizes faster than letting the
/// poisoned cluster re-stabilize (lying beacons force a CBT reversion and a
/// full re-merge; rollback is one corrupt_node sweep).
#[test]
fn rollback_beats_restabilization_on_lying_beacons() {
    let adv = Adversary::LyingBeacons { victims: 2 };
    let max = 2 * budget(N, HOSTS) + 64;
    let mut cfg = Config::seeded(7);
    cfg.record_rounds = false;
    let (restab, _) = drive(7, cfg, "sync", &adv, false, max);
    let (rollback, _) = drive(7, cfg, "sync", &adv, true, max);
    assert_eq!(restab.verdict, RunVerdict::Satisfied, "{restab:?}");
    assert_eq!(rollback.verdict, RunVerdict::Satisfied, "{rollback:?}");
    assert!(rollback.rolled_back >= 2, "victims must be restored");
    assert!(
        rollback.rounds < restab.rounds,
        "time-to-relegal: rollback {} must beat restab {}",
        rollback.rounds,
        restab.rounds
    );
    // Detection is prompt: the divergence rule fires within a beacon TTL of
    // the lie reaching a neighbor's recorded view.
    assert!(rollback.first_critical.is_some());
    assert!(rollback.first_critical.unwrap() <= INJECT + avatar_cbt::state::BEACON_TTL);
}

/// Per-region isolation hooks on the real protocol: a quarantined region
/// stops serving cross-cut lookups, release restores full service, and the
/// legality predicate (which ignores the message layer) holds throughout.
#[test]
fn quarantine_isolates_and_release_restores_service() {
    let mut cfg = Config::seeded(21);
    cfg.record_rounds = false;
    let mut rt = warmed_fixture(21, cfg);
    let region: Vec<NodeId> = rt.ids().iter().copied().take(HOSTS / 2).collect();
    assert_eq!(quarantine(&mut rt, &region), region.len());
    assert!(rt.partitioned());
    assert!(
        chord_scaffold::runtime_is_legal(&rt),
        "quarantine is message-level only"
    );
    rt.attach_workload(OpenLoop::new(4.0, N).limited(64), WorkloadConfig::default());
    rt.run(64);
    let held = rt.request_stats().clone();
    assert!(
        held.completed < held.issued && held.in_flight > 0,
        "cut-crossing lookups must stall behind the quarantine: {held:?}"
    );
    assert!(release(&mut rt));
    assert!(!rt.partitioned());
    let mut waited = 0;
    while rt.request_stats().in_flight > 0 && waited < 256 {
        rt.step();
        waited += 1;
    }
    let after = rt.request_stats();
    assert!(
        after.completed > held.completed,
        "stalled lookups must complete once released: {after:?}"
    );
    assert_eq!(after.in_flight, 0, "drained after release: {after:?}");
    assert_eq!(after.completed + after.failed, after.issued);
    assert!(chord_scaffold::runtime_is_legal(&rt));
}

/// A double release is a no-op, and quarantining an empty region covers
/// nothing but still replaces any active partition.
#[test]
fn quarantine_edge_cases() {
    let mut cfg = Config::seeded(5);
    cfg.record_rounds = false;
    let mut rt = warmed_fixture(5, cfg);
    assert!(!release(&mut rt), "nothing to release");
    assert_eq!(quarantine(&mut rt, &[]), 0);
}

proptest! {
    /// Detector verdicts — every severity, class count, implicated set, and
    /// event record — are identical across thread counts for every
    /// adversary class. 96 deterministic cases; runs are capped well short
    /// of re-legality (the property is about detection, not recovery, and
    /// a timeout verdict must be identical too).
    #[test]
    fn detector_verdicts_identical_across_threads(
        pick in 0u8..6,
        threads in 2usize..5,
        seed in 0u64..8,
    ) {
        let adv = match pick {
            0 => Adversary::StaleBeacons { victims: 3, age: WARM },
            1 => Adversary::LyingBeacons { victims: 2 },
            2 => Adversary::Equivocation { victims: 2, audiences: 2 },
            3 => Adversary::CrashWave { region: 2, waves: 2, spacing: 4 },
            4 => Adversary::FlashCrowd { joiners: vec![N - 1, N - 2], attach: 2 },
            _ => Adversary::PartitionCycle { side: 3, cycles: 1, hold: 4, gap: 4 },
        };
        let run = |threads: usize| {
            let mut cfg = Config::seeded(seed).threads(threads);
            cfg.record_rounds = false;
            let (out, metrics) = drive(seed, cfg, "sync", &adv, false, 48);
            fingerprint(&out, &metrics)
        };
        prop_assert_eq!(run(1), run(threads));
    }
}
