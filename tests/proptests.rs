//! Property-based tests (proptest) on the core invariants.

use chord_scaffolding::topology::{cbt::Cbt, chord::Chord, Avatar};
use proptest::prelude::*;

proptest! {
    /// Responsible ranges always partition the guest space.
    #[test]
    fn avatar_ranges_partition(
        n_exp in 3u32..11,
        picks in proptest::collection::btree_set(0u32..2048, 1..40),
    ) {
        let n = 1u32 << n_exp;
        let hosts: Vec<u32> = picks.into_iter().filter(|&v| v < n).collect();
        prop_assume!(!hosts.is_empty());
        let av = Avatar::new(n, hosts.iter().copied());
        prop_assert!(av.ranges_partition_guest_space());
        // host_of is consistent with range_of.
        for g in 0..n {
            let h = av.host_of(g);
            prop_assert!(av.range_of(h).contains(g));
        }
    }

    /// CBT parent/child relations are mutually inverse and levels increase.
    #[test]
    fn cbt_structure_consistent(n in 1u32..600) {
        let t = Cbt::new(n);
        for g in 0..n {
            if let Some(p) = t.parent(g) {
                let (l, r) = t.children(p);
                prop_assert!(l == Some(g) || r == Some(g));
                prop_assert_eq!(t.level(g), t.level(p) + 1);
            }
        }
    }

    /// Canonical decomposition tiles any interval disjointly.
    #[test]
    fn cbt_decompose_tiles(
        (n, a, b) in (2u32..400).prop_flat_map(|n| (Just(n), 0..n, 1..=n)),
    ) {
        prop_assume!(a < b);
        let t = Cbt::new(n);
        let mut covered: Vec<u32> = t
            .decompose(a, b)
            .into_iter()
            .flat_map(|p| p.interval.0..p.interval.1)
            .collect();
        covered.sort_unstable();
        let expect: Vec<u32> = (a..b).collect();
        prop_assert_eq!(covered, expect);
    }

    /// Crossing edges found by the O(log N) routine match brute force.
    #[test]
    fn cbt_crossing_edges_exact(
        (n, a, b) in (2u32..200).prop_flat_map(|n| (Just(n), 0..n, 1..=n)),
    ) {
        prop_assume!(a < b);
        let t = Cbt::new(n);
        let mut expect: Vec<(u32, u32)> = Vec::new();
        for g in a..b {
            for nb in t.neighborhood(g) {
                if !(a <= nb && nb < b) {
                    expect.push((g, nb));
                }
            }
        }
        expect.sort_unstable();
        prop_assert_eq!(t.crossing_edges(a, b), expect);
    }

    /// Chord finger arithmetic: source inverts finger; neighborhoods are
    /// symmetric.
    #[test]
    fn chord_fingers_involutive(
        (n_exp, i, k) in (2u32..12).prop_flat_map(|e| (Just(e), 0..(1u32 << e), 0..e)),
    ) {
        let n = 1u32 << n_exp;
        let c = Chord::classic(n);
        prop_assume!(k < c.finger_count());
        let j = c.finger(i, k);
        prop_assert_eq!(c.finger_source(j, k), i);
        prop_assert!(c.neighborhood(j).contains(&i) || i == j);
    }

    /// Greedy routing on the ideal table always reaches within log2 N hops.
    #[test]
    fn chord_routing_reaches(
        (n_exp, s, t) in (3u32..10).prop_flat_map(|e| (Just(e), 0..(1u32 << e), 0..(1u32 << e))),
    ) {
        let n = 1u32 << n_exp;
        prop_assume!(s != t);
        let c = Chord::classic(n);
        let r = chord_scaffolding::topology::routing::ideal_route(&c, s, t);
        prop_assert!(r.reached);
        prop_assert!(r.hops() as u32 <= n_exp + 1);
    }

    /// The merge ownership rule agrees with the global Avatar assignment for
    /// arbitrary two-cluster splits.
    #[test]
    fn merge_winner_matches_avatar(
        n_exp in 3u32..10,
        picks in proptest::collection::btree_set(0u32..512, 2..24),
        split_seed in 0u64..1000,
    ) {
        let n = 1u32 << n_exp;
        let all: Vec<u32> = picks.into_iter().filter(|&v| v < n).collect();
        prop_assume!(all.len() >= 2);
        // Deterministic split into two non-empty sides.
        let mut a_side = Vec::new();
        let mut b_side = Vec::new();
        for (i, &v) in all.iter().enumerate() {
            if (split_seed >> (i % 60)) & 1 == 0 {
                a_side.push(v);
            } else {
                b_side.push(v);
            }
        }
        prop_assume!(!a_side.is_empty() && !b_side.is_empty());
        let av_union = Avatar::new(n, all.iter().copied());
        let av_a = Avatar::new(n, a_side.iter().copied());
        let av_b = Avatar::new(n, b_side.iter().copied());
        for g in 0..n {
            let ha = av_a.host_of(g);
            let hb = av_b.host_of(g);
            let winner = if chord_scaffolding::scaffold::merge::won_by(ha, hb, (g, g + 1))
                .is_empty()
            {
                hb
            } else {
                ha
            };
            prop_assert_eq!(winner, av_union.host_of(g), "guest {}", g);
        }
    }

    /// Simulator invariant: after arbitrary small protocol runs, adjacency
    /// stays symmetric and sorted (checked via the topology's own audit).
    #[test]
    fn sim_topology_invariants(seed in 0u64..50, extra in 0usize..20) {
        use chord_scaffolding::sim::{init, Config, Runtime, Program, Ctx};
        use rand::SeedableRng;
        struct Chatter;
        impl Program for Chatter {
            type Msg = u8;
            fn step(&mut self, ctx: &mut Ctx<'_, u8>) {
                let nb: Vec<u32> = ctx.neighbors().to_vec();
                for &v in nb.iter().take(2) {
                    ctx.send(v, 1);
                }
                if nb.len() >= 2 {
                    ctx.link(nb[0], nb[nb.len() - 1]);
                }
                if nb.len() >= 3 {
                    ctx.unlink(nb[1]);
                }
            }
        }
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let ids = init::random_ids(12, 64, &mut rng);
        let edges = init::random_connected(&ids, extra, &mut rng);
        let mut rt = Runtime::new(
            Config::seeded(seed),
            ids.iter().map(|&v| (v, Chatter)),
            edges,
        );
        rt.run(15);
        prop_assert!(rt.topology().check_invariants());
    }
}
