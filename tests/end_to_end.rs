//! Cross-crate integration tests: the full stack from arbitrary initial
//! configurations to the silent legal Avatar(Chord), plus the guarantees the
//! stabilized overlay provides to applications.

use chord_scaffolding::chord::{self, ChordTarget, Phase};
use chord_scaffolding::sim::{init::Shape, Config, Runtime};
use chord_scaffolding::topology::{Avatar, Cbt, Chord, Graph};

fn budget(n: u32, hosts: usize) -> u64 {
    let e = chord_scaffolding::scaffold::Schedule::new(n).epoch_len();
    let logn = (usize::BITS - hosts.leading_zeros()) as u64;
    e * (8 * logn + 16)
}

/// Drive to Avatar(Chord) legality through the monitor API.
fn stabilize(
    rt: &mut Runtime<chord::ScaffoldProgram<ChordTarget>>,
    max_rounds: u64,
) -> Option<u64> {
    rt.run_monitored(&mut chord::legality(), max_rounds)
        .rounds_if_satisfied()
}

#[test]
fn stabilizes_from_every_shape_and_matches_projection() {
    let n = 128u32;
    let hosts = 12usize;
    let target = ChordTarget::classic(n);
    for (i, shape) in Shape::ALL.into_iter().enumerate() {
        let mut rt =
            chord::runtime_from_shape(target, hosts, shape, Config::seeded(500 + i as u64));
        stabilize(&mut rt, budget(n, hosts))
            .unwrap_or_else(|| panic!("{} failed to stabilize", shape.label()));
        // The final host topology realizes every guest Chord edge.
        let ids: Vec<u32> = rt.ids().to_vec();
        let av = Avatar::new(n, ids.iter().copied());
        let guest_chord = Chord::classic(n);
        for (a, b) in guest_chord.edges() {
            let (ha, hb) = (av.host_of(a), av.host_of(b));
            if ha != hb {
                assert!(
                    rt.topology().has_edge(ha, hb),
                    "{}: guest edge ({a},{b}) not realized",
                    shape.label()
                );
            }
        }
        // And the scaffold tree stays embedded (the pattern keeps it).
        for (a, b) in Cbt::new(n).edges() {
            let (ha, hb) = (av.host_of(a), av.host_of(b));
            if ha != hb {
                assert!(rt.topology().has_edge(ha, hb));
            }
        }
    }
}

#[test]
fn stabilized_overlay_is_failure_robust() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let n = 256u32;
    let hosts = 32usize;
    let target = ChordTarget::classic(n);
    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Random, Config::seeded(600));
    stabilize(&mut rt, budget(n, hosts)).expect("stabilization");

    let g = Graph::new(rt.ids().iter().copied(), rt.topology().edges());
    let mut rng = SmallRng::seed_from_u64(601);
    // Removing 2 random hosts almost never disconnects the Chord overlay;
    // the pure scaffold tree would disconnect on any internal host.
    let p = g.survival_probability(2, 50, &mut rng);
    assert!(p > 0.85, "survival probability {p} too low");
}

#[test]
fn repeated_faults_always_heal() {
    use chord_scaffolding::sim::fault::{inject, Fault};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let n = 64u32;
    let hosts = 8usize;
    let target = ChordTarget::classic(n);
    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Line, Config::seeded(700));
    stabilize(&mut rt, budget(n, hosts)).expect("initial");
    let mut rng = SmallRng::seed_from_u64(701);
    for episode in 0..3 {
        inject(&mut rt, &Fault::Rewire { count: 2 }, &mut rng);
        stabilize(&mut rt, budget(n, hosts))
            .unwrap_or_else(|| panic!("episode {episode} failed to heal"));
    }
}

#[test]
fn every_host_ends_done_and_quiet() {
    let n = 128u32;
    let hosts = 16usize;
    let target = ChordTarget::classic(n);
    let mut rt = chord::runtime_from_shape(target, hosts, Shape::TwoCliques, Config::seeded(800));
    stabilize(&mut rt, budget(n, hosts)).expect("stabilization");
    for _ in 0..5 {
        rt.step();
    }
    assert!(rt.programs().all(|(_, p)| p.core.phase == Phase::Done));
    let before = rt.metrics().total_messages;
    rt.run(30);
    assert_eq!(
        rt.metrics().total_messages,
        before,
        "network must be silent"
    );
}

#[test]
fn guest_routing_works_on_final_overlay() {
    use chord_scaffolding::topology::routing::ideal_route;
    let n = 128u32;
    let chord_desc = Chord::classic(n);
    for s in [0u32, 17, 99] {
        for t in [3u32, 64, 127] {
            if s == t {
                continue;
            }
            let r = ideal_route(&chord_desc, s, t);
            assert!(r.reached);
            assert!(r.hops() as u32 <= chord_desc.finger_count() + 1);
        }
    }
}
