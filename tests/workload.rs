//! Live-traffic properties over the full Avatar(Chord) stack: request
//! conservation (`issued == completed + failed + in_flight` at every round
//! boundary), byte-identical metrics — hop and latency histograms included
//! — across thread counts, and sync ≡ activity execution equivalence with
//! traffic attached, all while lookups race real stabilization and churn.

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::fault::Fault;
use chord_scaffolding::sim::sched::ActivityDriven;
use chord_scaffolding::sim::{init::Shape, Config, OpenLoop, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Drive a chord network from a random shape with an open-loop lookup
/// workload attached the whole time, interleaving a churn storm; assert
/// the conservation law from the per-round rows; fingerprint the metrics.
fn traffic_run(seed: u64, hosts: usize, storm: usize, threads: usize, activity: bool) -> String {
    let n = 64u32;
    // record_rounds: true; `always_parallel` pins the pool path whenever
    // threads > 1 — small fixtures would otherwise fall under the
    // auto-sequential threshold and never exercise the chunked apply.
    let cfg = Config::seeded(seed).threads(threads).always_parallel();
    let mut rt = chord::runtime_from_shape(ChordTarget::classic(n), hosts, Shape::Random, cfg);
    if activity {
        rt.set_scheduler(Box::new(ActivityDriven));
    }
    rt.attach_workload(OpenLoop::new(0.5, n), WorkloadConfig::default());
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x007A_FF1C);
    rt.run(150); // traffic racing stabilization from round 0
    for e in 0..storm {
        let fault = if e % 2 == 0 {
            Fault::Leave {
                id: None,
                keep_connected: true,
            }
        } else {
            let id = (0..n)
                .find(|v| !rt.topology().contains(*v))
                .expect("free guest id");
            Fault::Join { id, attach: 2 }
        };
        chord_scaffolding::sim::fault::inject(&mut rt, &fault, &mut rng);
        rt.run(120);
    }
    rt.run(150);

    // Conservation at every round boundary, reconstructed from the rows.
    let m = rt.metrics();
    let (mut issued, mut completed, mut failed) = (0u64, 0u64, 0u64);
    for row in &m.per_round {
        issued += row.requests_issued;
        completed += row.requests_completed;
        failed += row.requests_failed;
        assert_eq!(
            issued,
            completed + failed + row.requests_in_flight,
            "conservation broken at round {} (seed {seed}, storm {storm}, \
             threads {threads}, activity {activity})",
            row.round
        );
    }
    assert_eq!(issued, m.requests.issued);
    assert_eq!(completed, m.requests.completed);
    assert_eq!(failed, m.requests.failed);
    assert_eq!(m.requests.in_flight, issued - completed - failed);
    serde_json::to_string(m).expect("metrics serialize")
}

/// Strip the scheduler-dependent activity columns (activations legitimately
/// differ between daemons; every request metric must not).
fn activity_blind(metrics_json: &str) -> String {
    chord_scaffolding::sim::metrics::blank_json_fields(
        metrics_json,
        &["total_activations", "active_nodes"],
    )
}

/// Deterministic pin of the headline claims: a churny traffic run is
/// byte-identical across thread counts {1, 2, 4} (hop and latency
/// histograms included — they are part of the serialized metrics), and the
/// activity-driven daemon reproduces it exactly modulo activation counts.
#[test]
fn churny_traffic_is_thread_invariant_and_scheduler_equivalent() {
    let base = traffic_run(42, 8, 2, 1, false);
    assert!(base.contains("\"hop_histogram\""), "histograms serialized");
    assert_eq!(base, traffic_run(42, 8, 2, 2, false), "2 threads");
    assert_eq!(base, traffic_run(42, 8, 2, 4, false), "4 threads");
    assert_eq!(base, traffic_run(42, 8, 2, 8, false), "8 threads");
    let act = traffic_run(42, 8, 2, 1, true);
    assert_eq!(
        activity_blind(&base),
        activity_blind(&act),
        "activity ≡ sync with live traffic"
    );
}

/// Lookups on the converged overlay route in O(log N) host hops — the
/// end-to-end payoff, measured on live links rather than the ideal table.
#[test]
fn converged_overlay_serves_lookups_with_logarithmic_hops() {
    let n = 64u32;
    let hosts = 8usize;
    let mut rt = chord::runtime_from_shape(
        ChordTarget::classic(n),
        hosts,
        Shape::Random,
        Config::seeded(7),
    );
    let out = rt.run_monitored(&mut chord::legality(), 50_000);
    assert!(out.rounds_if_satisfied().is_some(), "must stabilize");
    rt.attach_workload(
        OpenLoop::new(4.0, n).limited(400),
        WorkloadConfig::default(),
    );
    rt.run(400 / 4 + 64);
    let s = rt.request_stats();
    assert_eq!(s.issued, 400);
    assert_eq!(s.completed, 400, "all lookups land on the legal overlay");
    assert!(
        s.max_hops_seen() <= 14,
        "host hops bounded by ~2·log2(64): got {}",
        s.max_hops_seen()
    );
    assert!(
        chord::runtime_is_legal(&rt),
        "traffic never perturbs legality"
    );
}

proptest! {
    /// Property form over (seed, churn storm, scheduler, threads): the
    /// conservation law holds at every round boundary (asserted inside
    /// `traffic_run`), and the serialized metrics — latency histograms
    /// included — are byte-identical between sequential and multi-threaded
    /// execution of the same (seed, scheduler). (The vendored proptest
    /// harness runs a fixed fan of seeded cases.)
    #[test]
    fn traffic_conservation_and_thread_identity(
        seed in 0u64..100_000,
        hosts in 5usize..8,
        storm in 0usize..3,
        threads in 2usize..9,
        sched in 0u32..2,
    ) {
        let activity = sched == 1;
        let sequential = traffic_run(seed, hosts, storm, 1, activity);
        let parallel = traffic_run(seed, hosts, storm, threads, activity);
        prop_assert_eq!(
            sequential, parallel,
            "threads {} diverged (seed {}, storm {}, activity {})",
            threads, seed, storm, activity
        );
    }
}
