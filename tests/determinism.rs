//! Determinism and parallel-equivalence of the full protocol stack:
//! thread-pool round execution (`ssim::par`) must be bit-identical to
//! sequential execution at every thread count, and identical seeds must
//! reproduce identical runs.

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::{init::Shape, Config};

fn fingerprint(
    rt: &chord_scaffolding::sim::Runtime<chord::ScaffoldProgram>,
) -> (Vec<(u32, u32)>, u64, usize) {
    (
        rt.topology().edges(),
        rt.metrics().total_messages,
        rt.metrics().peak_degree,
    )
}

#[test]
fn parallel_execution_matches_sequential() {
    let n = 128u32;
    let hosts = 12usize;
    // `always_parallel` pins the pool path: without it the auto-sequential
    // heuristic would keep a 12-host fixture off the pool entirely and the
    // test would only re-check the sequential path against itself. Batched
    // windows (K = 16) route `run` through the hot-window driver, so the
    // spin-wait generations are under test too.
    let run = |threads: usize, batch: u32| {
        let target = ChordTarget::classic(n);
        let mut cfg = Config::seeded(0xD00D)
            .threads(threads)
            .always_parallel()
            .batch_rounds(batch);
        cfg.record_rounds = false;
        let mut rt = chord::runtime_from_shape(target, hosts, Shape::Random, cfg);
        rt.run(1500);
        fingerprint(&rt)
    };
    let sequential = run(1, 1);
    for threads in [2usize, 4, 8] {
        for batch in [1u32, 16] {
            assert_eq!(
                sequential,
                run(threads, batch),
                "{threads} threads, batch {batch}"
            );
        }
    }
}

/// With a request workload attached, the determinism guarantees extend to
/// traffic: identical seeds reproduce identical request streams, and the
/// serialized metrics — request accounting and histograms included — are
/// byte-identical across thread counts.
#[test]
fn workload_runs_are_thread_and_seed_deterministic() {
    use chord_scaffolding::sim::{OpenLoop, WorkloadConfig};
    let run = |threads: usize| {
        let target = ChordTarget::classic(128);
        let mut cfg = Config::seeded(0xBEA7).threads(threads).always_parallel();
        cfg.record_rounds = false;
        let mut rt = chord::runtime_from_shape(target, 12, Shape::Random, cfg);
        rt.attach_workload(OpenLoop::new(1.0, 128), WorkloadConfig::default());
        rt.run(1200);
        assert_eq!(
            rt.metrics().requests.issued,
            rt.metrics().requests.completed
                + rt.metrics().requests.failed
                + rt.metrics().requests.in_flight,
            "conservation law"
        );
        serde_json::to_string(rt.metrics()).expect("metrics serialize")
    };
    let sequential = run(1);
    assert!(sequential.contains("\"latency_histogram\""));
    assert_eq!(sequential, run(2));
    assert_eq!(sequential, run(4));
    assert_eq!(sequential, run(8));
    assert_eq!(sequential, run(1), "same seed reproduces the traffic");
}

#[test]
fn same_seed_reproduces_run() {
    let run = || {
        let target = ChordTarget::classic(64);
        let mut rt = chord::runtime_from_shape(target, 8, Shape::Lollipop, Config::seeded(0xFACE));
        rt.run(900);
        fingerprint(&rt)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_differ() {
    let run = |seed| {
        let target = ChordTarget::classic(64);
        let mut rt = chord::runtime_from_shape(target, 8, Shape::Random, Config::seeded(seed));
        rt.run(400);
        rt.metrics().total_messages
    };
    // Different seeds give different initial graphs and coin flips; the
    // message trace will differ (with overwhelming probability).
    assert_ne!(run(1), run(2));
}

#[test]
fn paper_finger_variant_also_stabilizes() {
    use chord_scaffolding::chord::{is_legal, ScaffoldProgram};
    use chord_scaffolding::sim::{init, Runtime};
    use rand::SeedableRng;
    let n = 64u32;
    let target = ChordTarget::paper(n);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
    let ids = init::random_ids(8, n, &mut rng);
    let edges = init::ring(&ids);
    let nodes = ids.iter().map(|&v| {
        let nonce = (v as u64 + 3).wrapping_mul(0x9E3779B97F4A7C15);
        (v, ScaffoldProgram::new(v, target, nonce))
    });
    let mut rt = Runtime::new(Config::seeded(99), nodes, edges);
    let rounds = rt.run_until(
        |r| is_legal(&target, r.topology(), r.programs().map(|(_, p)| p)),
        100_000,
    );
    assert!(rounds.is_some(), "Definition 1 variant failed to stabilize");
}

#[test]
fn truncated_target_stabilizes() {
    use chord_scaffolding::chord::{is_legal, ScaffoldProgram, TruncatedChordTarget};
    use chord_scaffolding::sim::{init, Runtime};
    use rand::SeedableRng;
    let n = 64u32;
    let target = TruncatedChordTarget::new(n, 2);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(78);
    let ids = init::random_ids(6, n, &mut rng);
    let edges = init::line(&ids);
    let nodes = ids.iter().map(|&v| {
        let nonce = (v as u64 + 5).wrapping_mul(0x9E3779B97F4A7C15);
        (v, ScaffoldProgram::new(v, target, nonce))
    });
    let mut rt = Runtime::new(Config::seeded(98), nodes, edges);
    let rounds = rt.run_until(
        |r| is_legal(&target, r.topology(), r.programs().map(|(_, p)| p)),
        100_000,
    );
    assert!(rounds.is_some(), "truncated target failed to stabilize");
}
