//! # chord-scaffolding — facade crate
//!
//! Reproduction of Berns, *"Network Scaffolding for Efficient Stabilization
//! of the Chord Overlay Network"* (SPAA 2021). Re-exports the workspace
//! crates under one roof for the examples and downstream users:
//!
//! * [`sim`] — the synchronous overlay-network simulator (model of §2),
//!   including **dynamic membership** (hosts join/leave/crash mid-run), the
//!   [`sim::monitor`] observer API, declarative [`sim::scenario`]
//!   perturbation schedules, pluggable [`sim::sched`] **daemons**
//!   (synchronous, randomized, adversarial, and the activity-driven daemon
//!   that makes post-convergence rounds O(activity) instead of O(n)), and
//!   live **traffic**: [`sim::workload`] request generators routed
//!   hop-by-hop over the evolving host links by the protocols' own
//!   [`sim::workload::Router`] implementations, with per-request
//!   accounting and SLO monitors.
//! * [`topology`] — `Chord(N)`, `Cbt(N)`, the Avatar embedding, analytics.
//! * [`scaffold`] — the self-stabilizing `Avatar(Cbt)` substrate (§3).
//! * [`chord`] — the paper's contribution: self-stabilizing `Avatar(Chord)`
//!   via PIF finger waves and phase selection (§4–§5), plus the generalized
//!   scaffolding pattern (§6).
//! * [`baseline`] — TCF and the linear-scaffold comparison algorithms.
//!
//! The three driver-facing layers compose as **Program → Monitor →
//! Scenario** (see `ARCHITECTURE.md`): a [`sim::Program`] defines one
//! node's round behavior, a [`sim::Monitor`] observes the global
//! configuration and renders a verdict, and a [`sim::Scenario`] schedules
//! perturbations — faults *and true membership churn* — against a running
//! network.
//!
//! ## Quickstart: stabilize, then survive churn
//!
//! ```
//! use chord_scaffolding::chord::{self, ChordTarget};
//! use chord_scaffolding::sim::fault::Fault;
//! use chord_scaffolding::sim::scenario::Scenario;
//! use chord_scaffolding::sim::{init::Shape, Config};
//!
//! // 8 hosts with random ids in a guest space of 64, starting from a line.
//! let target = ChordTarget::classic(64);
//! let mut rt = chord::runtime_from_shape(target, 8, Shape::Line, Config::seeded(7));
//!
//! // Drive to the legal configuration with the legality monitor.
//! let out = rt.run_monitored(&mut chord::legality(), 50_000);
//! println!("stabilized in {} rounds", out.rounds);
//! assert!(chord::runtime_is_legal(&rt));
//!
//! // Now the fragile-environment workload: a host joins (the node set
//! // really grows), another leaves, and the overlay must re-stabilize.
//! let newcomer = (0..64).find(|v| !rt.ids().contains(v)).unwrap();
//! let veteran = rt.ids()[3];
//! let scenario = Scenario::new("churn")
//!     .fault(0, Fault::Join { id: newcomer, attach: 2 })
//!     .leave(5, veteran);
//! let report = scenario.run(&mut rt, &mut chord::legality(), 50_000);
//! assert!(report.converged(), "overlay healed around the churn");
//! assert_eq!(report.nodes_final, 8, "8 - 1 + 1 hosts remain");
//! println!("{}", report.to_json());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use avatar_cbt as scaffold;
pub use baselines as baseline;
pub use chord_scaffold as chord;
pub use overlay as topology;
pub use ssim as sim;
