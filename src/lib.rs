//! # chord-scaffolding — facade crate
//!
//! Reproduction of Berns, *"Network Scaffolding for Efficient Stabilization
//! of the Chord Overlay Network"* (SPAA 2021). Re-exports the workspace
//! crates under one roof for the examples and downstream users:
//!
//! * [`sim`] — the synchronous overlay-network simulator (model of §2).
//! * [`topology`] — `Chord(N)`, `Cbt(N)`, the Avatar embedding, analytics.
//! * [`scaffold`] — the self-stabilizing `Avatar(Cbt)` substrate (§3).
//! * [`chord`] — the paper's contribution: self-stabilizing `Avatar(Chord)`
//!   via PIF finger waves and phase selection (§4–§5), plus the generalized
//!   scaffolding pattern (§6).
//! * [`baseline`] — TCF and the linear-scaffold comparison algorithms.
//!
//! ## Quickstart
//!
//! ```
//! use chord_scaffolding::chord::{self, ChordTarget};
//! use chord_scaffolding::sim::{init::Shape, Config};
//!
//! // 8 hosts with random ids in a guest space of 64, starting from a line.
//! let target = ChordTarget::classic(64);
//! let mut rt = chord::runtime_from_shape(target, 8, Shape::Line, Config::seeded(7));
//! let rounds = chord::stabilize(&mut rt, 50_000).expect("self-stabilization");
//! println!("stabilized in {rounds} rounds");
//! assert!(chord::runtime_is_legal(&rt));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use avatar_cbt as scaffold;
pub use baselines as baseline;
pub use chord_scaffold as chord;
pub use overlay as topology;
pub use ssim as sim;
