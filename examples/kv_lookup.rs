//! Distributed key–value lookups over the stabilized overlay: the classic
//! Chord application, now on **live routed traffic** — every lookup is a
//! real request traveling hop-by-hop over the host links the engine
//! maintains, forwarded by the protocol's own greedy guest-space router
//! (`O(log N)` hops). Nothing consults an ideal finger table: the route a
//! request takes is whatever the stabilized hosts actually know.
//!
//! ```text
//! cargo run --release --example kv_lookup
//! ```

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::workload::Silent;
use chord_scaffolding::sim::{init::Shape, Config, WorkloadConfig};
use chord_scaffolding::topology::Avatar;

fn hash_key(key: &str, n: u32) -> u32 {
    // FNV-1a, folded into the guest space.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % n as u64) as u32
}

fn main() {
    let n_guests = 256;
    let hosts = 20;
    let target = ChordTarget::classic(n_guests);

    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Ring, Config::seeded(77));
    let rounds = rt
        .run_monitored(&mut chord::legality(), 200_000)
        .rounds_if_satisfied()
        .expect("stabilization");
    println!(
        "overlay ready after {rounds} rounds; hosts = {:?}",
        rt.ids()
    );

    // Attach the traffic subsystem in manual mode (requests come from
    // `inject_request`, not a generator) and keep per-request records.
    let wcfg = WorkloadConfig {
        record_requests: true,
        ..WorkloadConfig::default()
    };
    rt.attach_workload(Silent, wcfg);

    // The Avatar embedding predicts each key's responsible host — the live
    // route must resolve at exactly that host.
    let av = Avatar::new(n_guests, rt.ids().iter().copied());
    let gateway = *rt.ids().iter().min().unwrap(); // requests enter here

    let keys = ["alpha", "bravo", "charlie", "delta", "echo"];
    for key in keys {
        rt.inject_request(gateway, hash_key(key, n_guests));
    }
    // Drive the network until every lookup resolves (one hop per round;
    // the legal overlay stays silent while serving — only traffic moves).
    while rt.request_stats().in_flight > 0 {
        rt.step();
    }

    // Records land in completion order; request ids are issue order, so
    // sorting by id realigns them with `keys` for the printout.
    let mut records = rt.request_stats().records.clone();
    records.sort_unstable_by_key(|r| r.id);
    for (key, rec) in keys.iter().zip(&records) {
        let dest = rec.dest.expect("lookup completed");
        println!(
            "key {key:8} → guest slot {:3} → host {dest:3} ({} live hops, {} rounds)",
            rec.key,
            rec.hops,
            rec.done_round - rec.issued_round
        );
        assert_eq!(
            dest,
            av.host_of(rec.key),
            "route resolved at the responsible host"
        );
    }
    assert_eq!(rt.request_stats().completed, keys.len() as u64);
    assert!(
        chord::runtime_is_legal(&rt),
        "traffic left the overlay legal"
    );
    println!("✓ all lookups resolved over live links");

    // ---- checkpoint/restore: converge once, serve anywhere --------------
    // The stabilized (and still serving) runtime serializes to a sealed,
    // hash-verified snapshot. Restoring skips the stabilization budget
    // entirely: the restored overlay is already legal and keeps serving
    // exactly where the original left off — including the per-request
    // records of the batch above.
    let path = std::env::temp_dir().join("kv_lookup_demo.snap");
    rt.save_snapshot_to(&path).expect("snapshot writes");
    let bytes = std::fs::read(&path).expect("snapshot reads back");
    println!(
        "checkpoint: {} bytes ({} per host) at {}",
        bytes.len(),
        bytes.len() / hosts,
        path.display()
    );

    let mut rt2 = chord::restore_runtime(&bytes, Config::seeded(77)).expect("snapshot restores");
    std::fs::remove_file(&path).ok();
    assert!(
        chord::runtime_is_legal(&rt2),
        "restored overlay is legal without re-running stabilization"
    );
    // The snapshot carried the traffic subsystem's state; re-supplying the
    // same generator type resumes it (the saved WorkloadConfig wins, so the
    // restored run keeps recording requests).
    rt2.attach_workload(Silent, WorkloadConfig::default());

    let more = ["foxtrot", "golf", "hotel"];
    for key in more {
        rt2.inject_request(gateway, hash_key(key, n_guests));
    }
    while rt2.request_stats().in_flight > 0 {
        rt2.step();
    }
    let mut records = rt2.request_stats().records.clone();
    records.sort_unstable_by_key(|r| r.id);
    for (key, rec) in more.iter().zip(records.iter().skip(keys.len())) {
        let dest = rec.dest.expect("lookup completed");
        println!(
            "key {key:8} → guest slot {:3} → host {dest:3} ({} live hops, restored runtime)",
            rec.key, rec.hops
        );
        assert_eq!(dest, av.host_of(rec.key), "restored routes stay correct");
    }
    assert_eq!(
        rt2.request_stats().completed,
        (keys.len() + more.len()) as u64,
        "the restored runtime continued the original request accounting"
    );
    println!("✓ restored from checkpoint and kept serving");
}
