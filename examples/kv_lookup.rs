//! Distributed key–value lookups over the stabilized overlay: the classic
//! Chord application. Keys hash into the guest space; a lookup greedily
//! follows fingers and resolves at the responsible host — `O(log N)` hops.
//!
//! ```text
//! cargo run --release --example kv_lookup
//! ```

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::{init::Shape, Config};
use chord_scaffolding::topology::routing::greedy_route;
use chord_scaffolding::topology::{Avatar, Chord};

fn hash_key(key: &str, n: u32) -> u32 {
    // FNV-1a, folded into the guest space.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % n as u64) as u32
}

fn main() {
    let n_guests = 256;
    let hosts = 20;
    let target = ChordTarget::classic(n_guests);

    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Ring, Config::seeded(77));
    let rounds = rt
        .run_monitored(&mut chord::legality(), 200_000)
        .rounds_if_satisfied()
        .expect("stabilization");
    println!(
        "overlay ready after {rounds} rounds; hosts = {:?}",
        rt.ids()
    );

    let av = Avatar::new(n_guests, rt.ids().iter().copied());
    let ideal = Chord::classic(n_guests);

    for key in ["alpha", "bravo", "charlie", "delta", "echo"] {
        let slot = hash_key(key, n_guests);
        let owner = av.host_of(slot);
        // Route on the guest ring from guest 0 to the key's slot using the
        // ideal finger table the overlay now realizes.
        let route = greedy_route(&ideal, |g| ideal.neighborhood(g), 0, slot, 64);
        println!(
            "key {key:8} → guest slot {slot:3} → host {owner:3} ({} guest hops)",
            route.hops()
        );
        assert!(route.reached);
    }
    println!("✓ all lookups resolved");
}
