//! Quickstart: build a self-stabilizing Avatar(Chord) network from an
//! arbitrary connected start and watch it converge.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chord_scaffolding::chord::{self, ChordTarget, Phase};
use chord_scaffolding::sim::{init::Shape, Config};

fn main() {
    let n_guests = 256; // guest capacity N (power of two)
    let hosts = 24; // real nodes n ≤ N
    let target = ChordTarget::classic(n_guests);

    println!("Building Avatar(Chord({n_guests})) over {hosts} hosts from a random start…");
    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Random, Config::seeded(42));

    let budget = 200_000;
    let rounds = rt
        .run_monitored(&mut chord::legality(), budget)
        .rounds_if_satisfied()
        .expect("self-stabilization within budget");

    println!("✓ stabilized in {rounds} rounds");
    println!("  hosts:            {:?}", rt.ids());
    println!("  final edges:      {}", rt.topology().edge_count());
    println!("  final max degree: {}", rt.topology().max_degree());
    println!("  peak degree:      {}", rt.metrics().peak_degree);
    println!(
        "  degree expansion: {:.2}",
        rt.metrics().degree_expansion(rt.topology().max_degree())
    );
    println!("  total messages:   {}", rt.metrics().total_messages);

    // The legal network is silent: phases are DONE and nothing is sent.
    let before = rt.metrics().total_messages;
    for _ in 0..50 {
        rt.step();
    }
    let all_done = rt.programs().all(|(_, p)| p.core.phase == Phase::Done);
    println!(
        "  silent:           {} (0 messages over 50 extra rounds: {})",
        all_done,
        rt.metrics().total_messages == before
    );
}
