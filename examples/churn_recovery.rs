//! IoT-style churn scenario — with *real* membership churn. A stabilized
//! Avatar(Chord) overlay absorbs hosts joining, leaving gracefully, and
//! crashing mid-run (the node set genuinely grows and shrinks), plus edge
//! rewires and state corruption, all declared as one `Scenario` and driven
//! by the legality monitor. This is the paper's motivating deployment:
//! "overlay networks operate in fragile environments where faults that
//! perturb the logical network topology are commonplace."
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::fault::Fault;
use chord_scaffolding::sim::scenario::Scenario;
use chord_scaffolding::sim::{init::Shape, Config};

fn main() {
    let n_guests = 128;
    let hosts = 16;
    let target = ChordTarget::classic(n_guests);

    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Star, Config::seeded(9));
    let out = rt.run_monitored(&mut chord::legality(), 200_000);
    println!(
        "initial stabilization: {} rounds over {} hosts",
        out.rounds,
        rt.ids().len()
    );
    assert!(out.rounds_if_satisfied().is_some(), "initial stabilization");

    // Fresh guest identifiers for the joiners: not hosted yet.
    let taken: std::collections::HashSet<u32> = rt.ids().iter().copied().collect();
    let mut fresh = (0..n_guests).filter(|v| !taken.contains(v));
    let (a, b, c) = (
        fresh.next().unwrap(),
        fresh.next().unwrap(),
        fresh.next().unwrap(),
    );
    let anchor = rt.ids()[0];
    let victim = rt.ids()[hosts / 2];

    // One epoch of breathing room between perturbation episodes.
    let gap = chord_scaffolding::scaffold::Schedule::new(n_guests).epoch_len();
    let scenario = Scenario::new("iot-churn")
        .seeded(2024)
        // Episode 1: two hosts join, one attached to a named anchor.
        .join(0, a, &[anchor])
        .fault(gap, Fault::Join { id: b, attach: 2 })
        // Episode 2: a named host leaves; a random one crashes.
        .leave(2 * gap, victim)
        .fault(
            3 * gap,
            Fault::Crash {
                id: None,
                keep_connected: true,
            },
        )
        // Episode 3: classic transient faults on top of the churn. The
        // state corruption goes through the structured adversary library
        // (targeted, detectable identity corruption) instead of an ad-hoc
        // mutation closure: the anchor starts lying about its cluster.
        .fault(4 * gap, Fault::Rewire { count: 2 });
    let scenario = chord_scaffolding::sim::Adversary::LyingBeacons { victims: 1 }
        .schedule(scenario, &[anchor], 4 * gap, 2024)
        // Episode 4: one more join at the end, for good measure.
        .fault(5 * gap, Fault::Join { id: c, attach: 2 });

    let nodes_before = rt.ids().len();
    let report = scenario.run(&mut rt, &mut chord::legality(), 200_000);

    for e in &report.events {
        println!("round {:>4}: {} ({} changes)", e.round, e.event, e.changes);
    }
    println!(
        "verdict: {:?} after {} rounds (re-converged at {:?})",
        report.verdict, report.rounds, report.satisfied_at
    );
    println!(
        "hosts: {} -> {} ({} joins, {} leaves, {} crashes); peak degree {}",
        nodes_before,
        report.nodes_final,
        report.joins,
        report.leaves,
        report.crashes,
        report.peak_degree
    );
    assert!(
        report.converged(),
        "overlay must heal from membership churn"
    );
    assert_eq!(report.nodes_final, nodes_before + 3 - 2);
    assert!(chord::runtime_is_legal(&rt));
    println!("report: {}", report.to_json());
    println!("✓ survived all churn episodes (node set changed mid-run)");
}
