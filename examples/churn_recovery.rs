//! IoT-style churn scenario: a stabilized overlay is repeatedly perturbed by
//! transient faults — link rewires and host state corruption — and heals
//! itself each time. This is the paper's motivating deployment: "overlay
//! networks operate in fragile environments where faults that perturb the
//! logical network topology are commonplace."
//!
//! ```text
//! cargo run --release --example churn_recovery
//! ```

use chord_scaffolding::chord::{self, ChordTarget};
use chord_scaffolding::sim::fault::{inject, Fault};
use chord_scaffolding::sim::{init::Shape, Config};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let n_guests = 128;
    let hosts = 16;
    let target = ChordTarget::classic(n_guests);
    let mut rng = SmallRng::seed_from_u64(2024);

    let mut rt = chord::runtime_from_shape(target, hosts, Shape::Star, Config::seeded(9));
    let rounds = chord::stabilize(&mut rt, 200_000).expect("initial stabilization");
    println!("initial stabilization: {rounds} rounds");

    for episode in 1..=3 {
        // Transient fault: rewire two edges (connectivity preserved) and
        // corrupt one host's cluster state outright.
        inject(&mut rt, &Fault::Rewire { count: 2 }, &mut rng);
        let victim = rt.ids()[episode % hosts];
        rt.corrupt_node(victim, |p| {
            p.core.cbt.core.cid = 0xBAD;
            p.core.cbt.core.range = (0, 1);
        });
        println!(
            "episode {episode}: rewired 2 edges, corrupted host {victim}; legal = {}",
            chord::runtime_is_legal(&rt)
        );

        let healed = chord::stabilize(&mut rt, 200_000).expect("self-healing");
        println!(
            "episode {episode}: healed in {healed} rounds (peak degree so far {})",
            rt.metrics().peak_degree
        );
    }
    println!("✓ survived all churn episodes");
}
