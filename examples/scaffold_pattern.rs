//! The generalized network-scaffolding pattern (Section 6): plug a different
//! target topology into the same scaffold machinery. Here the truncated
//! Chord target (fewer finger levels — a lower-degree, higher-diameter
//! trade-off) is built with the identical protocol.
//!
//! ```text
//! cargo run --release --example scaffold_pattern
//! ```

use chord_scaffolding::chord::{
    legality_for, InductiveTarget, ScaffoldProgram, TruncatedChordTarget,
};
use chord_scaffolding::sim::{init, Config, Runtime};
use rand::SeedableRng;

fn main() {
    let n_guests = 128u32;
    let hosts = 12usize;
    // Only 3 finger levels instead of log N = 7.
    let target = TruncatedChordTarget::new(n_guests, 3);
    println!(
        "building Avatar({}) with {} waves over {hosts} hosts…",
        target.name(),
        target.waves()
    );

    let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
    let ids = init::random_ids(hosts, n_guests, &mut rng);
    let edges = init::line(&ids);
    let nodes = ids.iter().map(|&v| {
        let nonce = (v as u64 + 11).wrapping_mul(0x9E3779B97F4A7C15);
        (v, ScaffoldProgram::new(v, target, nonce))
    });
    let mut rt = Runtime::new(Config::seeded(31), nodes, edges);

    let rounds = rt
        .run_monitored(&mut legality_for(target), 200_000)
        .rounds_if_satisfied()
        .expect("pattern instance must stabilize");

    println!("✓ stabilized in {rounds} rounds");
    println!("  final max degree: {}", rt.topology().max_degree());
    println!("  final edges:      {}", rt.topology().edge_count());
    println!(
        "  (full Chord would need {} waves; the pattern reuses the same scaffold, \
         detector, and phase machinery)",
        (n_guests as f64).log2() as u32
    );
}
